// Package cluster implements the system-level data replication that
// lets SDF drop cross-channel parity (§2.2): "in our large-scale
// Internet service infrastructure, data reliability is provided by
// data replication across multiple racks ... SDF excludes the
// parity-based data protection and relies on BCH ECC and
// software-managed data replication."
//
// A replica Group spans several storage nodes (each a CCDB slice on
// its own device). Writes go to every replica; reads are served by
// the primary, and when a node reports an uncorrectable BCH error —
// the rare event the paper saw once across 2000+ cards in six months
// — the group transparently recovers the value from another replica
// and repairs the failed node.
//
// Degraded-mode operation (DESIGN.md §9): replica writes are bounded
// by a virtual-time deadline, slow reads are hedged at the next
// replica after HedgeAfter, crashed nodes are skipped and their missed
// writes tracked per key, and a restarted node is re-replicated from
// its healthy peers in the background.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdf/internal/ccdb"
	"sdf/internal/coord"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Group errors.
var (
	// ErrAllReplicasFailed is returned when no replica can serve a read.
	ErrAllReplicasFailed = errors.New("cluster: all replicas failed")
	// ErrNodeDown reports an operation skipped because the node is
	// crashed.
	ErrNodeDown = errors.New("cluster: node down")
	// ErrReplicaTimeout reports a replica write that missed the
	// group's deadline.
	ErrReplicaTimeout = errors.New("cluster: replica deadline exceeded")
	// ErrWriteShed reports a write rejected by SLO admission control:
	// the error-budget burn priced its delay above Admission.MaxDelay.
	ErrWriteShed = errors.New("cluster: write shed by admission control")
)

// Node is one storage server holding a replica: a CCDB slice plus the
// NIC that replication traffic crosses.
type Node struct {
	Name  string
	Slice *ccdb.Slice
	nic   *sim.SharedLink
	alive bool
	// dirty tracks keys this node missed (a put that failed or
	// timed out here, or arrived while the node was down). Read-repair
	// and restart-time re-replication reconcile them.
	dirty map[string]bool
	// lostPower distinguishes a power cut from a clean crash: the
	// node's device holds persistent media state and must be
	// remounted (onRemount) before it can serve again.
	lostPower bool
	// catchingUp marks a node that rejoined the group but whose
	// restart-time re-replication is still in flight: it can serve,
	// but the group routes reads to settled replicas first.
	catchingUp bool
	onFail     func()
	onRemount  func(p *sim.Proc) (*ccdb.Slice, error)
	// window is the node's erase-window membership in the slice's
	// coordinator (DESIGN.md §16), nil when co-scheduling is off. The
	// group consults it in readOrder (a replica inside a granted window
	// is paying erase latency — route around it) and keeps its liveness
	// in sync so a dead replica never holds or queues for a window.
	window *coord.Member
}

// NewNode wraps a slice as a replica node with a 10 GbE NIC.
func NewNode(env *sim.Env, name string, slice *ccdb.Slice) *Node {
	return &Node{
		Name:  name,
		Slice: slice,
		nic:   sim.NewSharedLink(env, 1.25e9),
		alive: true,
		dirty: make(map[string]bool),
	}
}

// NIC returns the node's network link, so fault plans can degrade it.
func (n *Node) NIC() *sim.SharedLink { return n.nic }

// SetWindow wires the node's erase-window coordinator membership; the
// same Member should gate the node's block layer (Config.EraseGate).
func (n *Node) SetWindow(m *coord.Member) { n.window = m }

// inWindow reports whether the replica is currently inside a granted
// (or forced) erase window.
func (n *Node) inWindow() bool { return n.window != nil && n.window.InWindow() }

// SetPowerHooks wires the node for power-loss injection. fail runs at
// the crash instant in scheduler context (it must not block — flag
// flips like Device.PowerLoss and Journal.Halt only); remount runs in
// its own process at restart and returns the recovered slice, or an
// error if the device cannot be brought back.
func (n *Node) SetPowerHooks(fail func(), remount func(p *sim.Proc) (*ccdb.Slice, error)) {
	n.onFail = fail
	n.onRemount = remount
}

// Alive reports whether the node is serving requests.
func (n *Node) Alive() bool { return n.alive }

// Config tunes a replica group.
type Config struct {
	// RepairOnRead rewrites a value to a replica that failed to serve
	// it (read-repair). Disable to observe bare failover.
	RepairOnRead bool
	// ReplicaDeadline bounds how long a Put waits for each replica
	// acknowledgment (virtual time, measured from the start of the
	// Put). A replica that misses it counts as failed and is marked
	// dirty for repair. 0 waits forever.
	ReplicaDeadline time.Duration
	// HedgeAfter launches the read at the next replica when the
	// current one has not answered within this much virtual time,
	// instead of waiting for it to fail. 0 disables hedging.
	HedgeAfter time.Duration
	// ReadDeadline is each Get's virtual-time deadline, measured from
	// its start. It does not abort the read; it caps every hedge timer
	// at the original deadline, so retries and hedges decrement one
	// shared budget instead of re-arming HedgeAfter per replica — once
	// the deadline passes, the group fans out to every remaining
	// replica immediately. 0 disables the deadline.
	ReadDeadline time.Duration
	// Admission, when non-nil, gates every Put through SLO admission
	// control (DESIGN.md §16): the token bucket throttles to the read
	// SLO's error-budget burn, delaying or shedding writes. When a
	// majority of replicas is down the gate is bypassed — the group
	// degrades to best-effort admission rather than shedding writes a
	// mostly-dead group needs for durability.
	Admission *coord.Admission
}

// DefaultConfig enables read-repair, a 500 ms replica write deadline,
// and 20 ms read hedging.
func DefaultConfig() Config {
	return Config{
		RepairOnRead:    true,
		ReplicaDeadline: 500 * time.Millisecond,
		HedgeAfter:      20 * time.Millisecond,
	}
}

// Stats are the group's cumulative counters, read out of the same
// metrics.Counter storage the registry exports (they cannot drift).
type Stats struct {
	// Puts counts fully acknowledged writes; Gets counts reads.
	Puts, Gets int64
	// Failovers counts reads served by a non-primary replica.
	Failovers int64
	// Repairs counts successful read-repair writebacks.
	Repairs int64
	// Lost counts reads no replica could serve.
	Lost int64
	// DivergentPuts counts writes that failed or timed out on some
	// replicas but landed on others: the caller saw an error, yet
	// surviving replicas hold the value until repair reconciles it.
	DivergentPuts int64
	// Hedges counts hedged reads launched after HedgeAfter elapsed.
	Hedges int64
	// Rereplications counts keys copied back to a restarted node.
	Rereplications int64
	// Remounts counts nodes brought back through device recovery
	// after a power loss; FailedRemounts counts recovery attempts
	// that errored, leaving the node down.
	Remounts       int64
	FailedRemounts int64
	// DeprioritizedReads counts reads routed around a replica that was
	// mid-catch-up (remounted or restarted, re-replication in flight).
	DeprioritizedReads int64
	// WindowDeprioritizedReads counts reads routed around a replica
	// inside a granted erase window.
	WindowDeprioritizedReads int64
	// DelayedWrites and ShedWrites count admission-control outcomes;
	// BestEffortWrites counts puts that bypassed admission because a
	// majority of replicas was down.
	DelayedWrites, ShedWrites, BestEffortWrites int64
}

// groupCounters is the group's real counter storage. RegisterMetrics
// adopts each field into a registry, so the exported series and the
// Stats() snapshot are one set of numbers.
type groupCounters struct {
	puts, gets, failovers, repairs, lost  metrics.Counter
	divergentPuts, hedges, rereplications metrics.Counter
	remounts, failedRemounts              metrics.Counter
	deprioritized, windowDeprioritized    metrics.Counter
	delayedWrites, shedWrites             metrics.Counter
	bestEffortWrites                      metrics.Counter
}

// Group is a replicated keyspace across nodes; nodes[0] is the
// preferred (primary) read target.
type Group struct {
	env   *sim.Env
	cfg   Config
	nodes []*Node
	ctr   groupCounters
	// readLat is non-nil only when RegisterMetrics installed it;
	// Histogram.Observe is nil-safe, so Get observes unconditionally.
	readLat *metrics.Histogram
}

// NewGroup builds a group over the given nodes.
func NewGroup(env *sim.Env, cfg Config, nodes ...*Node) (*Group, error) {
	if len(nodes) < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	return &Group{env: env, cfg: cfg, nodes: nodes}, nil
}

// Replicas returns the replication factor.
func (g *Group) Replicas() int { return len(g.nodes) }

// Nodes returns the replica nodes in placement order.
func (g *Group) Nodes() []*Node { return g.nodes }

// Stats returns the group's cumulative counters.
func (g *Group) Stats() Stats {
	return Stats{
		Puts:                     g.ctr.puts.Value(),
		Gets:                     g.ctr.gets.Value(),
		Failovers:                g.ctr.failovers.Value(),
		Repairs:                  g.ctr.repairs.Value(),
		Lost:                     g.ctr.lost.Value(),
		DivergentPuts:            g.ctr.divergentPuts.Value(),
		Hedges:                   g.ctr.hedges.Value(),
		Rereplications:           g.ctr.rereplications.Value(),
		Remounts:                 g.ctr.remounts.Value(),
		FailedRemounts:           g.ctr.failedRemounts.Value(),
		DeprioritizedReads:       g.ctr.deprioritized.Value(),
		WindowDeprioritizedReads: g.ctr.windowDeprioritized.Value(),
		DelayedWrites:            g.ctr.delayedWrites.Value(),
		ShedWrites:               g.ctr.shedWrites.Value(),
		BestEffortWrites:         g.ctr.bestEffortWrites.Value(),
	}
}

// RegisterMetrics adopts the group's counters into r, installs a
// cluster_read_latency histogram observed by every successful Get,
// and a cluster_dirty_keys gauge (total keys awaiting repair across
// replicas — the group's replication lag). The gauge callback reads
// in-memory maps only and must stay park-free, per the GaugeFunc
// contract.
func (g *Group) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("cluster_puts_total", &g.ctr.puts, labels...)
	r.RegisterCounter("cluster_gets_total", &g.ctr.gets, labels...)
	r.RegisterCounter("cluster_failovers_total", &g.ctr.failovers, labels...)
	r.RegisterCounter("cluster_repairs_total", &g.ctr.repairs, labels...)
	r.RegisterCounter("cluster_lost_reads_total", &g.ctr.lost, labels...)
	r.RegisterCounter("cluster_divergent_puts_total", &g.ctr.divergentPuts, labels...)
	r.RegisterCounter("cluster_hedges_total", &g.ctr.hedges, labels...)
	r.RegisterCounter("cluster_rereplications_total", &g.ctr.rereplications, labels...)
	r.RegisterCounter("cluster_remounts_total", &g.ctr.remounts, labels...)
	r.RegisterCounter("cluster_failed_remounts_total", &g.ctr.failedRemounts, labels...)
	r.RegisterCounter("cluster_deprioritized_reads_total", &g.ctr.deprioritized, labels...)
	r.RegisterCounter("cluster_window_deprioritized_reads_total", &g.ctr.windowDeprioritized, labels...)
	r.RegisterCounter("cluster_admission_delayed_writes_total", &g.ctr.delayedWrites, labels...)
	r.RegisterCounter("cluster_admission_shed_writes_total", &g.ctr.shedWrites, labels...)
	r.RegisterCounter("cluster_admission_best_effort_writes_total", &g.ctr.bestEffortWrites, labels...)
	g.readLat = r.Histogram("cluster_read_latency_seconds", labels...)
	r.GaugeFunc("cluster_dirty_keys", func() float64 {
		var n int
		for _, node := range g.nodes {
			n += len(node.dirty)
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("cluster_live_nodes", func() float64 {
		var n int
		for _, node := range g.nodes {
			if node.alive {
				n++
			}
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("cluster_catching_up_nodes", func() float64 {
		var n int
		for _, node := range g.nodes {
			if node.alive && node.catchingUp {
				n++
			}
		}
		return float64(n)
	}, labels...)
}

// CrashNode takes the named node out of service: subsequent puts skip
// it (marking missed keys dirty) and reads fail over past it. It
// reports whether the node was found alive.
func (g *Group) CrashNode(name string) bool {
	for _, node := range g.nodes {
		if node.Name == name && node.alive {
			node.alive = false
			if node.window != nil {
				node.window.SetLive(false)
			}
			return true
		}
	}
	return false
}

// PowerLossNode cuts power to the named node: it leaves service like
// CrashNode, and additionally runs the node's fail hook (flipping the
// device and journal into their powered-off state) so in-flight
// writes tear exactly as the media model dictates. RestartNode must
// then remount the device before the node can serve. Safe to call
// from scheduler context. It reports whether the node was found
// alive.
func (g *Group) PowerLossNode(name string) bool {
	for _, node := range g.nodes {
		if node.Name == name && node.alive {
			node.alive = false
			node.lostPower = true
			if node.window != nil {
				node.window.SetLive(false)
			}
			if node.onFail != nil {
				node.onFail()
			}
			return true
		}
	}
	return false
}

// RestartNode brings a crashed node back and starts background
// re-replication of every key it missed, copied from healthy peers.
// A node that lost power is first remounted: its device recovery and
// journal replay run in a background process, and the node rejoins
// the group only once the recovered slice is installed — reads never
// route to a half-recovered replica. It reports whether the node was
// found crashed.
func (g *Group) RestartNode(name string) bool {
	for _, node := range g.nodes {
		if node.Name != name || node.alive {
			continue
		}
		node := node
		if node.lostPower && node.onRemount != nil {
			g.env.Go("cluster/remount", func(p *sim.Proc) {
				t := g.env.Tracer()
				span := t.Begin(g.env.Now(), 0, "cluster/remount."+node.Name, trace.PhaseRecovery)
				slice, err := node.onRemount(p)
				t.End(g.env.Now(), span)
				if err != nil {
					g.ctr.failedRemounts.Inc()
					return
				}
				node.Slice = slice
				node.lostPower = false
				node.catchingUp = true
				node.alive = true
				if node.window != nil {
					node.window.SetLive(true)
				}
				g.ctr.remounts.Inc()
				g.rereplicate(p, node)
				node.catchingUp = false
			})
			return true
		}
		node.alive = true
		node.catchingUp = true
		if node.window != nil {
			node.window.SetLive(true)
		}
		g.env.Go("cluster/rereplicate", func(p *sim.Proc) {
			g.rereplicate(p, node)
			node.catchingUp = false
		})
		return true
	}
	return false
}

// Put stores the value on every live replica in parallel and returns
// when all acknowledge or the replica deadline lapses — write
// availability follows the slowest node up to ReplicaDeadline. The
// value crosses each node's NIC before the slice write.
//
// On partial failure Put returns the first error, but the replicas
// that acknowledged keep the value: the group is diverged
// (DivergentPuts) until read-repair or re-replication reconciles the
// nodes marked dirty.
func (g *Group) Put(p *sim.Proc, key string, value []byte, size int) error {
	if g.cfg.Admission != nil {
		live := 0
		for _, node := range g.nodes {
			if node.alive {
				live++
			}
		}
		if 2*live > len(g.nodes) {
			switch g.cfg.Admission.Admit(p) {
			case coord.Delayed:
				g.ctr.delayedWrites.Inc()
			case coord.Shed:
				g.ctr.shedWrites.Inc()
				return ErrWriteShed
			}
		} else {
			// Majority down: shedding writes now would cost durability
			// exactly when the group can least afford it. Degrade to
			// best-effort admission until replicas return.
			g.ctr.bestEffortWrites.Inc()
		}
	}
	n := len(g.nodes)
	errs := make([]error, n)
	workers := make([]*sim.Proc, n)
	for i, node := range g.nodes {
		if !node.alive {
			errs[i] = fmt.Errorf("%w: %s", ErrNodeDown, node.Name)
			continue
		}
		i, node := i, node
		workers[i] = g.env.Go("cluster/put", func(wp *sim.Proc) {
			node.nic.Transfer(wp, size)
			errs[i] = node.Slice.Put(wp, key, value, size)
		})
	}
	deadline := g.env.Now() + g.cfg.ReplicaDeadline
	for i, w := range workers {
		if w == nil {
			continue
		}
		if g.cfg.ReplicaDeadline <= 0 {
			p.Join(w)
			continue
		}
		waitStart := g.env.Now()
		if !awaitWithin(g.env, p, w.DoneSignal(), deadline-waitStart) {
			errs[i] = fmt.Errorf("%w: %s", ErrReplicaTimeout, g.nodes[i].Name)
			t := g.env.Tracer()
			span := t.Begin(waitStart, 0, "cluster/put-timeout", trace.PhaseFault)
			t.End(g.env.Now(), span)
		}
	}
	acks := 0
	var firstErr error
	for i, err := range errs {
		if err == nil {
			acks++
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		g.nodes[i].dirty[key] = true
		// A node that was down when this put started but is alive now
		// remounted mid-put: its restart-time re-replication pass ran
		// before this key was marked dirty, so catch the straggler with
		// another pass.
		if node := g.nodes[i]; errors.Is(err, ErrNodeDown) && node.alive {
			g.env.Go("cluster/rereplicate", func(wp *sim.Proc) {
				g.rereplicate(wp, node)
			})
		}
	}
	if firstErr == nil {
		g.ctr.puts.Inc()
		return nil
	}
	if acks > 0 {
		g.ctr.divergentPuts.Inc()
	}
	return firstErr
}

// readOrder returns the replica indices in routing order: placement
// order, but with replicas currently inside a granted erase window
// moved behind every settled one (they are paying erase latency right
// now — the coordinator guarantees at most one per slice, so a settled
// replica always exists while a majority is live), and replicas still
// catching up after a remount or restart (re-replication in flight)
// behind those — a half-caught-up replica serves reads only when no
// other replica can, keeping its recovery bandwidth for the catch-up
// itself and its possibly-stale keys out of the fast path.
func (g *Group) readOrder() []int {
	order := make([]int, 0, len(g.nodes))
	var inWindow, lagging []int
	for i, node := range g.nodes {
		switch {
		case node.alive && node.catchingUp:
			lagging = append(lagging, i)
		case node.alive && node.inWindow():
			inWindow = append(inWindow, i)
		default:
			order = append(order, i)
		}
	}
	if len(inWindow) > 0 {
		g.ctr.windowDeprioritized.Inc()
	}
	if len(lagging) > 0 {
		g.ctr.deprioritized.Inc()
	}
	return append(append(order, inWindow...), lagging...)
}

// Get serves a read from the replicas in routing order (placement
// order with catching-up replicas deprioritized — see readOrder),
// hedging to the next one when the current read is slow (HedgeAfter)
// and failing over on any read error (uncorrectable ECC, dead
// channels, crashed nodes). With RepairOnRead, a recovered value is
// written back to the replicas that failed to serve it — including
// nodes diverged by an earlier partial Put.
func (g *Group) Get(p *sim.Proc, key string) ([]byte, int, error) {
	g.ctr.gets.Inc()
	order := g.readOrder()
	start := g.env.Now()
	// With a read deadline, every hedge timer is clamped to the one
	// deadline set at the start: slow replicas burn the shared budget,
	// they do not re-arm it. Past the deadline the loop stops waiting
	// and fans out to every remaining replica back-to-back.
	var deadline time.Duration
	if g.cfg.ReadDeadline > 0 {
		deadline = start + g.cfg.ReadDeadline
	}
	type result struct {
		value []byte
		size  int
		err   error
	}
	n := len(g.nodes)
	res := make([]*result, n)
	readers := make([]*sim.Proc, n)
	handled := make([]bool, n)
	var outstanding []int
	var failed []*Node
	next := 0
	var hedgeAt time.Duration
	for {
		// Collect finished readers in replica order.
		for _, i := range outstanding {
			if handled[i] || res[i] == nil {
				continue
			}
			handled[i] = true
			r, node := res[i], g.nodes[i]
			if r.err == nil {
				if i != order[0] {
					g.ctr.failovers.Inc()
				}
				node.nic.Transfer(p, r.size)
				g.readLat.Observe(g.env.Now() - start)
				g.repairAfterRead(node, key, r.value, r.size, failed)
				return r.value, r.size, nil
			}
			if errors.Is(r.err, ccdb.ErrNotFound) && !node.dirty[key] {
				// A key absent on an in-sync replica is absent
				// everywhere (replication is synchronous); report it
				// directly. A dirty replica's NotFound proves nothing.
				return nil, 0, r.err
			}
			failed = append(failed, node)
		}
		live := outstanding[:0]
		for _, i := range outstanding {
			if !handled[i] {
				live = append(live, i)
			}
		}
		outstanding = live
		for next < n && !g.nodes[order[next]].alive {
			next++ // crash-aware: never wait on a dead node
		}
		if len(outstanding) == 0 && next >= n {
			g.ctr.lost.Inc()
			return nil, 0, fmt.Errorf("%w: %q", ErrAllReplicasFailed, key)
		}
		hedgeable := g.cfg.HedgeAfter > 0 && len(outstanding) > 0
		if next < n && (len(outstanding) == 0 || (hedgeable && g.env.Now() >= hedgeAt)) {
			if len(outstanding) > 0 {
				g.ctr.hedges.Inc()
				t := g.env.Tracer()
				span := t.Begin(g.env.Now(), 0, "cluster/hedge", trace.PhaseFault)
				t.End(g.env.Now(), span)
			}
			i, node := order[next], g.nodes[order[next]]
			readers[i] = g.env.Go("cluster/get", func(wp *sim.Proc) {
				v, size, err := node.Slice.Get(wp, key)
				res[i] = &result{v, size, err}
			})
			outstanding = append(outstanding, i)
			next++
			hedgeAt = g.env.Now() + g.cfg.HedgeAfter
			if deadline > 0 && hedgeAt > deadline {
				hedgeAt = deadline
			}
			continue
		}
		// Park until any outstanding read finishes or the hedge timer
		// says to try the next replica.
		step := sim.NewSignal(g.env)
		for _, i := range outstanding {
			done := readers[i].DoneSignal()
			g.env.Go("cluster/watch", func(wp *sim.Proc) {
				wp.Await(done)
				step.Fire()
			})
		}
		if g.cfg.HedgeAfter > 0 && next < n {
			g.env.Schedule(hedgeAt-g.env.Now(), func() { step.Fire() })
		}
		p.Await(step)
	}
}

// repairAfterRead schedules read-repair for the replicas that failed
// this read plus any live replica still dirty for the key.
func (g *Group) repairAfterRead(winner *Node, key string, value []byte, size int, failed []*Node) {
	if !g.cfg.RepairOnRead {
		return
	}
	inFailed := make(map[*Node]bool, len(failed))
	for _, node := range failed {
		inFailed[node] = true
	}
	var targets []*Node
	for _, node := range g.nodes {
		if node == winner || !node.alive {
			continue
		}
		if inFailed[node] || node.dirty[key] {
			targets = append(targets, node)
		}
	}
	g.repair(targets, key, value, size)
}

// repair rewrites a recovered value to the given replicas.
func (g *Group) repair(targets []*Node, key string, value []byte, size int) {
	for _, node := range targets {
		node := node
		g.env.Go("cluster/repair", func(wp *sim.Proc) {
			if !node.alive {
				return
			}
			node.nic.Transfer(wp, size)
			if err := node.Slice.Put(wp, key, value, size); err == nil {
				delete(node.dirty, key)
				g.ctr.repairs.Inc()
			}
		})
	}
}

// rereplicate copies every key a restarted node missed from its
// healthy peers, in sorted key order for determinism.
func (g *Group) rereplicate(p *sim.Proc, node *Node) {
	if len(node.dirty) == 0 {
		return
	}
	t := g.env.Tracer()
	span := t.Begin(g.env.Now(), 0, "cluster/rereplicate."+node.Name, trace.PhaseFault)
	keys := make([]string, 0, len(node.dirty))
	for k := range node.dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, peer := range g.nodes {
			if peer == node || !peer.alive {
				continue
			}
			value, size, err := peer.Slice.Get(p, key)
			if err != nil {
				continue
			}
			node.nic.Transfer(p, size)
			if err := node.Slice.Put(p, key, value, size); err == nil {
				delete(node.dirty, key)
				g.ctr.rereplications.Inc()
			}
			break
		}
	}
	t.End(g.env.Now(), span)
}

// awaitWithin waits for done to fire, but no longer than d of virtual
// time; it reports whether done fired in time. The timer event and
// the watcher process are both one-shot, so a missing completion
// cannot keep the event queue alive.
func awaitWithin(env *sim.Env, p *sim.Proc, done *sim.Signal, d time.Duration) bool {
	if done.Fired() {
		return true
	}
	if d <= 0 {
		return false
	}
	step := sim.NewSignal(env)
	env.Schedule(d, func() { step.Fire() })
	env.Go("cluster/await", func(wp *sim.Proc) {
		wp.Await(done)
		step.Fire()
	})
	p.Await(step)
	return done.Fired()
}
