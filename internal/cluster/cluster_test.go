package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/sim"
)

// newNode builds a replica on its own small SDF device. baseBER sets
// the raw bit error rate of that node's flash; the BCH codec corrects
// modest rates, while extreme rates make reads fail uncorrectably.
func newNode(t *testing.T, env *sim.Env, name string, baseBER float64) *Node {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.Nand.BaseBER = baseBER
	cfg.Channel.ECC = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	slice := ccdb.NewSlice(env, store, ccdb.Config{
		PatchBytes:  store.BlockSize(),
		RunsPerTier: 8,
		DataMode:    true,
	})
	return NewNode(env, name, slice)
}

func TestReplicatedRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	g, err := NewGroup(env, DefaultConfig(),
		newNode(t, env, "rack1", 0),
		newNode(t, env, "rack2", 0),
		newNode(t, env, "rack3", 0))
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xCD}, 40_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "page-1", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		got, size, err := g.Get(p, "page-1")
		if err != nil || size != len(val) || !bytes.Equal(got, val) {
			t.Errorf("Get = %d/%v", size, err)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.Puts != 1 || st.Gets != 1 || st.Failovers != 0 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEveryReplicaHoldsTheData(t *testing.T) {
	env := sim.NewEnv()
	nodes := []*Node{
		newNode(t, env, "a", 0), newNode(t, env, "b", 0), newNode(t, env, "c", 0),
	}
	g, err := NewGroup(env, DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", []byte("replicated"), 10); err != nil {
			t.Error(err)
			return
		}
		for _, n := range nodes {
			v, _, err := n.Slice.Get(p, "k")
			if err != nil || string(v) != "replicated" {
				t.Errorf("node %s: %q %v", n.Name, v, err)
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFailoverOnUncorrectableECC(t *testing.T) {
	env := sim.NewEnv()
	// The primary's flash is hopeless (BER far beyond BCH t=8); the
	// other replicas are healthy.
	sick := newNode(t, env, "sick", 1e-2)
	g, err := NewGroup(env, DefaultConfig(),
		sick,
		newNode(t, env, "healthy1", 0),
		newNode(t, env, "healthy2", 0))
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{7}, 30_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		// Force the primary's copy to flash so its reads go to the
		// (corrupt) device rather than the memtable.
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get after primary corruption: %v", err)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if st.Lost != 0 {
		t.Fatalf("lost = %d, want 0", st.Lost)
	}
}

func TestReadRepairRestoresReplica(t *testing.T) {
	env := sim.NewEnv()
	sick := newNode(t, env, "sick", 1e-2)
	healthy := newNode(t, env, "healthy", 0)
	g, err := NewGroup(env, DefaultConfig(), sick, healthy)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{9}, 20_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := g.Get(p, "k"); err != nil {
			t.Error(err)
			return
		}
		p.Wait(2 * time.Second) // let the async repair land
		// The repaired copy sits in the sick node's memtable, so it is
		// readable again despite the bad flash.
		v, _, err := sick.Slice.Get(p, "k")
		if err != nil || !bytes.Equal(v, val) {
			t.Errorf("repaired replica: %v", err)
		}
	})
	env.RunUntilDone(w)
	if repairs := g.Stats().Repairs; repairs != 1 {
		t.Fatalf("repairs = %d, want 1", repairs)
	}
	env.Close()
}

func TestAllReplicasFailed(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(t, env, "a", 1e-2)
	b := newNode(t, env, "b", 1e-2)
	g, err := NewGroup(env, DefaultConfig(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", bytes.Repeat([]byte{1}, 10_000), 10_000); err != nil {
			t.Error(err)
			return
		}
		if err := a.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if err := b.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		_, _, err := g.Get(p, "k")
		if !errors.Is(err, ErrAllReplicasFailed) {
			t.Errorf("Get = %v, want ErrAllReplicasFailed", err)
		}
	})
	env.RunUntilDone(w)
	lost := g.Stats().Lost
	env.Close()
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
}

func TestDivergentPutRepairedOnRead(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(t, env, "a", 0)
	b := newNode(t, env, "b", 0)
	c := newNode(t, env, "c", 0)
	g, err := NewGroup(env, DefaultConfig(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{3}, 20_000)
	w := env.Go("t", func(p *sim.Proc) {
		// Choke c's NIC so its replica write misses the deadline: the
		// Put must surface the error while a and b keep the value.
		c.NIC().SetRateFactor(1e-9)
		err := g.Put(p, "k", val, len(val))
		if !errors.Is(err, ErrReplicaTimeout) {
			t.Errorf("Put with stalled replica: %v, want ErrReplicaTimeout", err)
			return
		}
		c.NIC().SetRateFactor(1)
		// The surviving replicas serve the key despite the failed Put.
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get of diverged key: %v", err)
			return
		}
		p.Wait(2 * time.Second) // let the async read-repair land
		v, _, err := c.Slice.Get(p, "k")
		if err != nil || !bytes.Equal(v, val) {
			t.Errorf("diverged replica not repaired: %v", err)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.DivergentPuts != 1 {
		t.Fatalf("divergentPuts = %d, want 1", st.DivergentPuts)
	}
	if st.Lost != 0 {
		t.Fatalf("lost = %d, want 0", st.Lost)
	}
}

func TestCrashRestartRereplicates(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(t, env, "a", 0)
	b := newNode(t, env, "b", 0)
	c := newNode(t, env, "c", 0)
	g, err := NewGroup(env, DefaultConfig(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{5}, 15_000)
	w := env.Go("t", func(p *sim.Proc) {
		if !g.CrashNode("c") {
			t.Error("CrashNode failed")
			return
		}
		// The put errors (first error is the down node) but the two
		// surviving replicas hold the value — a diverged write.
		if err := g.Put(p, "k", val, len(val)); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Put with crashed node: %v, want ErrNodeDown", err)
			return
		}
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get during crash: %v", err)
			return
		}
		if !g.RestartNode("c") {
			t.Error("RestartNode failed")
			return
		}
		p.Wait(2 * time.Second) // background re-replication
		v, _, err := c.Slice.Get(p, "k")
		if err != nil || !bytes.Equal(v, val) {
			t.Errorf("restarted node missing re-replicated key: %v", err)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.DivergentPuts != 1 {
		t.Fatalf("divergentPuts = %d, want 1", st.DivergentPuts)
	}
	if st.Rereplications != 1 {
		t.Fatalf("rereplications = %d, want 1", st.Rereplications)
	}
	if st.Lost != 0 {
		t.Fatalf("lost = %d, want 0", st.Lost)
	}
}

func TestHedgedReadMasksSlowPrimary(t *testing.T) {
	env := sim.NewEnv()
	cfgDev := core.DefaultConfig()
	cfgDev.Channels = 4
	cfgDev.Channel.Nand.BlocksPerPlane = 16
	cfgDev.Channel.Nand.PagesPerBlock = 16
	cfgDev.Channel.Nand.RetainData = true
	cfgDev.Channel.ECC = true
	cfgDev.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfgDev)
	if err != nil {
		t.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	primary := NewNode(env, "primary", ccdb.NewSlice(env, store, ccdb.Config{
		PatchBytes:  store.BlockSize(),
		RunsPerTier: 8,
		DataMode:    true,
	}))
	backup := newNode(t, env, "backup", 0)
	g, err := NewGroup(env, DefaultConfig(), primary, backup)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{8}, 20_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		// Push the primary's copy to flash, then stall every channel
		// well past HedgeAfter: the read must be hedged at the backup
		// instead of waiting the stall out.
		if err := primary.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < dev.Channels(); i++ {
			dev.Channel(i).Hang(500 * time.Millisecond)
		}
		start := env.Now()
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("hedged Get: %v", err)
			return
		}
		if lat := env.Now() - start; lat >= 400*time.Millisecond {
			t.Errorf("hedged read took %v; hedge did not mask the stall", lat)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.Hedges == 0 {
		t.Fatal("no hedged read recorded")
	}
	if st.Failovers == 0 {
		t.Fatal("hedge winner not counted as failover")
	}
}

func TestNotFoundPropagates(t *testing.T) {
	env := sim.NewEnv()
	g, err := NewGroup(env, DefaultConfig(), newNode(t, env, "a", 0))
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if _, _, err := g.Get(p, "ghost"); !errors.Is(err, ccdb.ErrNotFound) {
			t.Errorf("Get = %v, want NotFound", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestGroupRequiresNodes(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	if _, err := NewGroup(env, DefaultConfig()); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestManyKeysSurviveOneSickReplica(t *testing.T) {
	env := sim.NewEnv()
	sick := newNode(t, env, "sick", 1e-2)
	g, err := NewGroup(env, DefaultConfig(),
		sick, newNode(t, env, "h1", 0), newNode(t, env, "h2", 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	want := make(map[string][]byte)
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, 2000+rng.Intn(8000))
			rng.Read(val)
			if err := g.Put(p, key, val, len(val)); err != nil {
				t.Error(err)
				return
			}
			want[key] = val
		}
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		for key, val := range want {
			got, _, err := g.Get(p, key)
			if err != nil || !bytes.Equal(got, val) {
				t.Errorf("key %s: %v", key, err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	lost := g.Stats().Lost
	env.Close()
	if lost != 0 {
		t.Fatalf("lost = %d, want 0", lost)
	}
}

// TestCatchingUpReplicaDeprioritized routes reads around a replica
// that is mid-remount: with the placement-order primary marked
// catching up, Get serves from a settled replica without counting a
// failover, and the deprioritized-read counter records the detour.
func TestCatchingUpReplicaDeprioritized(t *testing.T) {
	env := sim.NewEnv()
	nodes := []*Node{
		newNode(t, env, "a", 0), newNode(t, env, "b", 0), newNode(t, env, "c", 0),
	}
	g, err := NewGroup(env, DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0x5A}, 20_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		nodes[0].catchingUp = true
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get with catching-up primary: %v", err)
			return
		}
		nodes[0].catchingUp = false
		if _, _, err := g.Get(p, "k"); err != nil {
			t.Errorf("Get after catch-up settled: %v", err)
		}
	})
	env.RunUntilDone(w)
	st := g.Stats()
	env.Close()
	if st.DeprioritizedReads != 1 {
		t.Fatalf("deprioritized reads = %d, want 1 (only the read during catch-up)", st.DeprioritizedReads)
	}
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0: deprioritization is routing, not failure", st.Failovers)
	}
}

// TestCatchingUpReplicaStillServesAlone keeps availability ahead of
// freshness: when every settled replica is gone, a catching-up node
// must still serve the read rather than fail it.
func TestCatchingUpReplicaStillServesAlone(t *testing.T) {
	env := sim.NewEnv()
	nodes := []*Node{newNode(t, env, "a", 0), newNode(t, env, "b", 0)}
	g, err := NewGroup(env, DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xA5}, 10_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		nodes[0].catchingUp = true
		nodes[1].alive = false
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get from lone catching-up replica: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
