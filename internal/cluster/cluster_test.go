package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/sim"
)

// newNode builds a replica on its own small SDF device. baseBER sets
// the raw bit error rate of that node's flash; the BCH codec corrects
// modest rates, while extreme rates make reads fail uncorrectably.
func newNode(t *testing.T, env *sim.Env, name string, baseBER float64) *Node {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.Nand.BaseBER = baseBER
	cfg.Channel.ECC = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	slice := ccdb.NewSlice(env, store, ccdb.Config{
		PatchBytes:  store.BlockSize(),
		RunsPerTier: 8,
		DataMode:    true,
	})
	return NewNode(env, name, slice)
}

func TestReplicatedRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	g, err := NewGroup(env, DefaultConfig(),
		newNode(t, env, "rack1", 0),
		newNode(t, env, "rack2", 0),
		newNode(t, env, "rack3", 0))
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xCD}, 40_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "page-1", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		got, size, err := g.Get(p, "page-1")
		if err != nil || size != len(val) || !bytes.Equal(got, val) {
			t.Errorf("Get = %d/%v", size, err)
		}
	})
	env.RunUntilDone(w)
	puts, gets, failovers, _, lost := g.Stats()
	env.Close()
	if puts != 1 || gets != 1 || failovers != 0 || lost != 0 {
		t.Fatalf("stats = %d/%d/%d/%d", puts, gets, failovers, lost)
	}
}

func TestEveryReplicaHoldsTheData(t *testing.T) {
	env := sim.NewEnv()
	nodes := []*Node{
		newNode(t, env, "a", 0), newNode(t, env, "b", 0), newNode(t, env, "c", 0),
	}
	g, err := NewGroup(env, DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", []byte("replicated"), 10); err != nil {
			t.Error(err)
			return
		}
		for _, n := range nodes {
			v, _, err := n.Slice.Get(p, "k")
			if err != nil || string(v) != "replicated" {
				t.Errorf("node %s: %q %v", n.Name, v, err)
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFailoverOnUncorrectableECC(t *testing.T) {
	env := sim.NewEnv()
	// The primary's flash is hopeless (BER far beyond BCH t=8); the
	// other replicas are healthy.
	sick := newNode(t, env, "sick", 1e-2)
	g, err := NewGroup(env, DefaultConfig(),
		sick,
		newNode(t, env, "healthy1", 0),
		newNode(t, env, "healthy2", 0))
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{7}, 30_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		// Force the primary's copy to flash so its reads go to the
		// (corrupt) device rather than the memtable.
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		got, _, err := g.Get(p, "k")
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("Get after primary corruption: %v", err)
		}
	})
	env.RunUntilDone(w)
	_, _, failovers, _, lost := g.Stats()
	env.Close()
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if lost != 0 {
		t.Fatalf("lost = %d, want 0", lost)
	}
}

func TestReadRepairRestoresReplica(t *testing.T) {
	env := sim.NewEnv()
	sick := newNode(t, env, "sick", 1e-2)
	healthy := newNode(t, env, "healthy", 0)
	g, err := NewGroup(env, DefaultConfig(), sick, healthy)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{9}, 20_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", val, len(val)); err != nil {
			t.Error(err)
			return
		}
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := g.Get(p, "k"); err != nil {
			t.Error(err)
			return
		}
		p.Wait(2 * time.Second) // let the async repair land
		// The repaired copy sits in the sick node's memtable, so it is
		// readable again despite the bad flash.
		v, _, err := sick.Slice.Get(p, "k")
		if err != nil || !bytes.Equal(v, val) {
			t.Errorf("repaired replica: %v", err)
		}
	})
	env.RunUntilDone(w)
	_, _, _, repairs, _ := g.Stats()
	env.Close()
	if repairs != 1 {
		t.Fatalf("repairs = %d, want 1", repairs)
	}
}

func TestAllReplicasFailed(t *testing.T) {
	env := sim.NewEnv()
	a := newNode(t, env, "a", 1e-2)
	b := newNode(t, env, "b", 1e-2)
	g, err := NewGroup(env, DefaultConfig(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := g.Put(p, "k", bytes.Repeat([]byte{1}, 10_000), 10_000); err != nil {
			t.Error(err)
			return
		}
		if err := a.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if err := b.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		_, _, err := g.Get(p, "k")
		if !errors.Is(err, ErrAllReplicasFailed) {
			t.Errorf("Get = %v, want ErrAllReplicasFailed", err)
		}
	})
	env.RunUntilDone(w)
	_, _, _, _, lost := g.Stats()
	env.Close()
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
}

func TestNotFoundPropagates(t *testing.T) {
	env := sim.NewEnv()
	g, err := NewGroup(env, DefaultConfig(), newNode(t, env, "a", 0))
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if _, _, err := g.Get(p, "ghost"); !errors.Is(err, ccdb.ErrNotFound) {
			t.Errorf("Get = %v, want NotFound", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestGroupRequiresNodes(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	if _, err := NewGroup(env, DefaultConfig()); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestManyKeysSurviveOneSickReplica(t *testing.T) {
	env := sim.NewEnv()
	sick := newNode(t, env, "sick", 1e-2)
	g, err := NewGroup(env, DefaultConfig(),
		sick, newNode(t, env, "h1", 0), newNode(t, env, "h2", 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	want := make(map[string][]byte)
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, 2000+rng.Intn(8000))
			rng.Read(val)
			if err := g.Put(p, key, val, len(val)); err != nil {
				t.Error(err)
				return
			}
			want[key] = val
		}
		if err := sick.Slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		for key, val := range want {
			got, _, err := g.Get(p, key)
			if err != nil || !bytes.Equal(got, val) {
				t.Errorf("key %s: %v", key, err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	_, _, _, _, lost := g.Stats()
	env.Close()
	if lost != 0 {
		t.Fatalf("lost = %d, want 0", lost)
	}
}
