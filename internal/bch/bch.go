package bch

import (
	"errors"
	"fmt"
)

// ErrUncorrectable is returned when the received word contains more
// errors than the code can correct. In the SDF system this is the rare
// event reported to software for replica-based recovery (§2.2 reports
// one such event across 2000+ cards in six months).
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// Code is a binary BCH code, possibly shortened, protecting DataBytes
// of payload with ParityBytes of redundancy and correcting up to T bit
// errors per codeword.
type Code struct {
	f          *field
	t          int   // correctable errors
	gen        []int // generator polynomial coefficients over GF(2), gen[0] is x^0
	dataBits   int
	parityBits int
}

// New constructs a BCH code over GF(2^m) correcting t errors with the
// given payload size in bytes. The code is shortened from length 2^m-1:
// dataBytes*8 + m*t' must fit in 2^m-1 (t' being the actual generator
// degree, at most m*t).
func New(m, t, dataBytes int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: t must be >= 1, got %d", t)
	}
	f, err := newField(m)
	if err != nil {
		return nil, err
	}
	gen, err := generator(f, t)
	if err != nil {
		return nil, err
	}
	c := &Code{
		f:          f,
		t:          t,
		gen:        gen,
		dataBits:   dataBytes * 8,
		parityBits: len(gen) - 1,
	}
	if c.dataBits+c.parityBits > f.n {
		return nil, fmt.Errorf("bch: %d data + %d parity bits exceed code length %d",
			c.dataBits, c.parityBits, f.n)
	}
	return c, nil
}

// generator computes g(x) = lcm of the minimal polynomials of
// alpha^1 .. alpha^2t, as GF(2) coefficients (ints 0/1).
func generator(f *field, t int) ([]int, error) {
	g := []int{1}
	covered := make(map[int]bool)
	for i := 1; i <= 2*t; i++ {
		if covered[i] {
			continue
		}
		// The cyclotomic coset of i: i, 2i, 4i, ... mod (2^m - 1).
		var coset []int
		j := i
		for {
			coset = append(coset, j)
			covered[j] = true
			j = (j * 2) % f.n
			if j == i {
				break
			}
		}
		// Minimal polynomial: product of (x - alpha^j) over the coset.
		minPoly := []int{1}
		for _, j := range coset {
			root := f.pow(j)
			next := make([]int, len(minPoly)+1)
			for k, coef := range minPoly {
				next[k+1] ^= coef // x * coef
				next[k] ^= f.mul(coef, root)
			}
			minPoly = next
		}
		// Coefficients must collapse into GF(2).
		for k, coef := range minPoly {
			if coef != 0 && coef != 1 {
				return nil, fmt.Errorf("bch: minimal polynomial coefficient %d not in GF(2)", coef)
			}
			minPoly[k] = coef
		}
		// g *= minPoly over GF(2).
		prod := make([]int, len(g)+len(minPoly)-1)
		for a, ca := range g {
			if ca == 0 {
				continue
			}
			for b, cb := range minPoly {
				prod[a+b] ^= cb
			}
		}
		g = prod
	}
	return g, nil
}

// T returns the number of correctable bit errors per codeword.
func (c *Code) T() int { return c.t }

// DataBytes returns the payload size in bytes.
func (c *Code) DataBytes() int { return c.dataBits / 8 }

// ParityBytes returns the redundancy size in bytes (rounded up).
func (c *Code) ParityBytes() int { return (c.parityBits + 7) / 8 }

// bit reads logical bit i of a byte slice (MSB-first within bytes).
func bit(b []byte, i int) int {
	return int(b[i/8]>>(7-uint(i%8))) & 1
}

// flipBit toggles logical bit i of a byte slice.
func flipBit(b []byte, i int) {
	b[i/8] ^= 1 << (7 - uint(i%8))
}

// Encode computes the parity for data (which must be exactly DataBytes
// long) and returns it as a fresh slice of ParityBytes.
//
// The encoding is systematic: the codeword is data bits followed by
// parity bits, so the stored payload is unmodified.
func (c *Code) Encode(data []byte) []byte {
	if len(data)*8 != c.dataBits {
		panic(fmt.Sprintf("bch: Encode payload %d bytes, want %d", len(data), c.DataBytes()))
	}
	// LFSR division: remainder of data(x) * x^parityBits mod g(x).
	rem := make([]int, c.parityBits)
	for i := 0; i < c.dataBits; i++ {
		feedback := bit(data, i) ^ rem[0]
		copy(rem, rem[1:])
		rem[c.parityBits-1] = 0
		if feedback != 0 {
			// gen is indexed from x^0; rem[0] is the highest-order
			// register. rem[j] corresponds to x^(parityBits-1-j).
			for j := 0; j < c.parityBits; j++ {
				rem[j] ^= c.gen[c.parityBits-1-j]
			}
		}
	}
	parity := make([]byte, c.ParityBytes())
	for j, v := range rem {
		if v != 0 {
			flipBit(parity, j)
		}
	}
	return parity
}

// Decode checks data against parity and corrects up to T bit errors in
// place (in either data or parity). It returns the number of corrected
// bits, or ErrUncorrectable if the error pattern exceeds the code's
// capability.
func (c *Code) Decode(data, parity []byte) (int, error) {
	if len(data)*8 != c.dataBits {
		return 0, fmt.Errorf("bch: Decode payload %d bytes, want %d", len(data), c.DataBytes())
	}
	if len(parity) != c.ParityBytes() {
		return 0, fmt.Errorf("bch: Decode parity %d bytes, want %d", len(parity), c.ParityBytes())
	}
	synd, clean := c.syndromes(data, parity)
	if clean {
		return 0, nil
	}
	sigma, degree := c.berlekampMassey(synd)
	if degree > c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := c.chienSearch(sigma, degree)
	if !ok {
		return 0, ErrUncorrectable
	}
	total := c.dataBits + c.parityBits
	for _, pos := range positions {
		// pos is the exponent of the error locator: bit index from the
		// end of the codeword is pos; convert to index from the start.
		idx := total - 1 - pos
		if idx < 0 {
			return 0, ErrUncorrectable // error located in the shortened prefix
		}
		if idx < c.dataBits {
			flipBit(data, idx)
		} else {
			flipBit(parity, idx-c.dataBits)
		}
	}
	// Verify: all syndromes must now vanish (guards against
	// miscorrection of >t errors that alias onto a valid pattern).
	if _, clean := c.syndromes(data, parity); !clean {
		// Restore the flips before reporting failure.
		for _, pos := range positions {
			idx := total - 1 - pos
			if idx < c.dataBits {
				flipBit(data, idx)
			} else {
				flipBit(parity, idx-c.dataBits)
			}
		}
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// syndromes evaluates the received polynomial at alpha^1..alpha^2t.
// Codeword bit i (0 = first data bit) has weight x^(total-1-i).
func (c *Code) syndromes(data, parity []byte) ([]int, bool) {
	synd := make([]int, 2*c.t)
	total := c.dataBits + c.parityBits
	clean := true
	addBit := func(exp int) {
		for i := range synd {
			synd[i] ^= c.f.pow(exp * (i + 1) % c.f.n)
		}
	}
	for i := 0; i < c.dataBits; i++ {
		if bit(data, i) != 0 {
			addBit(total - 1 - i)
		}
	}
	for i := 0; i < c.parityBits; i++ {
		if bit(parity, i) != 0 {
			addBit(c.parityBits - 1 - i)
		}
	}
	for _, s := range synd {
		if s != 0 {
			clean = false
			break
		}
	}
	return synd, clean
}

// berlekampMassey finds the error-locator polynomial sigma(x) from the
// syndromes, returning its coefficients (sigma[0]=1) and degree.
func (c *Code) berlekampMassey(synd []int) ([]int, int) {
	f := c.f
	nSynd := len(synd)
	sigma := make([]int, nSynd+1)
	prev := make([]int, nSynd+1)
	sigma[0], prev[0] = 1, 1
	l := 0 // current LFSR length
	m := 1 // steps since last update
	b := 1 // last nonzero discrepancy
	for n := 0; n < nSynd; n++ {
		// Discrepancy: d = S_n + sum sigma[i]*S_{n-i}.
		d := synd[n]
		for i := 1; i <= l; i++ {
			d ^= f.mul(sigma[i], synd[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := make([]int, len(sigma))
			copy(tmp, sigma)
			coef := f.mul(d, f.inv(b))
			for i := 0; i+m < len(sigma); i++ {
				sigma[i+m] ^= f.mul(coef, prev[i])
			}
			l = n + 1 - l
			copy(prev, tmp)
			b = d
			m = 1
		} else {
			coef := f.mul(d, f.inv(b))
			for i := 0; i+m < len(sigma); i++ {
				sigma[i+m] ^= f.mul(coef, prev[i])
			}
			m++
		}
	}
	return sigma[:l+1], l
}

// chienSearch finds the roots of sigma(x) among alpha^-j for j in
// [0, n) and returns the corresponding error position exponents. It
// reports failure if the number of roots does not match the degree.
func (c *Code) chienSearch(sigma []int, degree int) ([]int, bool) {
	f := c.f
	var positions []int
	total := c.dataBits + c.parityBits
	for j := 0; j < total; j++ {
		// Evaluate sigma(alpha^-j).
		sum := 0
		for i, coef := range sigma {
			if coef == 0 {
				continue
			}
			if i == 0 {
				sum ^= coef
				continue
			}
			exp := (f.n - j%f.n) % f.n * i % f.n
			sum ^= f.mul(coef, f.alog[exp])
		}
		if sum == 0 {
			positions = append(positions, j)
			if len(positions) > degree {
				return nil, false
			}
		}
	}
	if len(positions) != degree {
		return nil, false
	}
	return positions, true
}
