// Package bch implements binary BCH error-correcting codes over
// GF(2^m), the per-chip data protection used by the SDF card (the
// paper removes cross-channel parity and relies on BCH ECC plus
// system-level replication; §2.2).
//
// The implementation is a textbook systematic encoder plus a
// syndrome / Berlekamp-Massey / Chien-search decoder, supporting
// shortened codes so a 512-byte flash sector can be protected with
// m*t parity bits (e.g. 104 bits for m=13, t=8).
package bch

import "fmt"

// field is GF(2^m) arithmetic backed by log/antilog tables.
type field struct {
	m    int
	n    int // 2^m - 1, the multiplicative group order
	log  []int
	alog []int // alog[i] = alpha^i, duplicated to 2n for mod-free indexing
}

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// represented with bit i = coefficient of x^i.
var primitivePolys = map[int]int{
	5:  0x25,   // x^5+x^2+1
	6:  0x43,   // x^6+x+1
	7:  0x89,   // x^7+x^3+1
	8:  0x11d,  // x^8+x^4+x^3+x^2+1
	9:  0x211,  // x^9+x^4+1
	10: 0x409,  // x^10+x^3+1
	11: 0x805,  // x^11+x^2+1
	12: 0x1053, // x^12+x^6+x^4+x+1
	13: 0x201b, // x^13+x^4+x^3+x+1
	14: 0x4443, // x^14+x^10+x^6+x+1
}

// newField builds GF(2^m) tables.
func newField(m int) (*field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("bch: no primitive polynomial for m=%d", m)
	}
	f := &field{m: m, n: (1 << m) - 1}
	f.log = make([]int, f.n+1)
	f.alog = make([]int, 2*f.n)
	x := 1
	for i := 0; i < f.n; i++ {
		f.alog[i] = x
		f.alog[i+f.n] = x
		f.log[x] = i
		x <<= 1
		if x>>m != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("bch: polynomial %#x is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// mul multiplies two field elements.
func (f *field) mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.alog[f.log[a]+f.log[b]]
}

// inv returns the multiplicative inverse of a nonzero element.
func (f *field) inv(a int) int {
	if a == 0 {
		panic("bch: inverse of zero")
	}
	return f.alog[f.n-f.log[a]]
}

// pow returns alpha^e for any integer exponent e >= 0.
func (f *field) pow(e int) int {
	return f.alog[e%f.n]
}
