package bch

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCode(t *testing.T, m, tErr, dataBytes int) *Code {
	t.Helper()
	c, err := New(m, tErr, dataBytes)
	if err != nil {
		t.Fatalf("New(%d, %d, %d): %v", m, tErr, dataBytes, err)
	}
	return c
}

func TestFieldTables(t *testing.T) {
	for _, m := range []int{5, 8, 10, 13} {
		f, err := newField(m)
		if err != nil {
			t.Fatalf("newField(%d): %v", m, err)
		}
		// alpha^n == alpha^0 == 1.
		if f.alog[0] != 1 {
			t.Fatalf("m=%d: alog[0] = %d, want 1", m, f.alog[0])
		}
		// Every nonzero element appears exactly once in the antilog table.
		seen := make(map[int]bool)
		for i := 0; i < f.n; i++ {
			if seen[f.alog[i]] {
				t.Fatalf("m=%d: duplicate element %d", m, f.alog[i])
			}
			seen[f.alog[i]] = true
		}
	}
}

func TestFieldInverse(t *testing.T) {
	f, _ := newField(10)
	for a := 1; a <= f.n; a++ {
		if got := f.mul(a, f.inv(a)); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
}

func TestFieldMulCommutesAndDistributes(t *testing.T) {
	f, _ := newField(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b, c := rng.Intn(f.n+1), rng.Intn(f.n+1), rng.Intn(f.n+1)
		if f.mul(a, b) != f.mul(b, a) {
			t.Fatalf("mul not commutative: %d, %d", a, b)
		}
		if f.mul(a, b^c) != f.mul(a, b)^f.mul(a, c) {
			t.Fatalf("mul not distributive: %d, %d, %d", a, b, c)
		}
	}
}

func TestGeneratorDividesCodewords(t *testing.T) {
	// A valid codeword (data||parity) must be divisible by g(x):
	// re-encoding corrected data must reproduce parity exactly.
	c := mustCode(t, 13, 8, 512)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 512)
	rng.Read(data)
	parity := c.Encode(data)
	if len(parity) != c.ParityBytes() {
		t.Fatalf("parity length %d, want %d", len(parity), c.ParityBytes())
	}
	// No errors: decode reports zero corrections.
	n, err := c.Decode(data, parity)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
}

func TestParitySize(t *testing.T) {
	c := mustCode(t, 13, 8, 512)
	// m*t = 104 bits = 13 bytes for a t=8 code over GF(2^13).
	if c.parityBits != 104 {
		t.Fatalf("parityBits = %d, want 104", c.parityBits)
	}
	if c.ParityBytes() != 13 {
		t.Fatalf("ParityBytes = %d, want 13", c.ParityBytes())
	}
}

func TestCorrectSingleBitEverywhere(t *testing.T) {
	c := mustCode(t, 10, 3, 64)
	orig := make([]byte, 64)
	rand.New(rand.NewSource(5)).Read(orig)
	parity := c.Encode(orig)
	for i := 0; i < 64*8; i += 37 { // sample positions across the payload
		data := append([]byte(nil), orig...)
		p := append([]byte(nil), parity...)
		flipBit(data, i)
		n, err := c.Decode(data, p)
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if n != 1 {
			t.Fatalf("bit %d: corrected %d, want 1", i, n)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("bit %d: data not restored", i)
		}
	}
}

func TestCorrectErrorInParity(t *testing.T) {
	c := mustCode(t, 10, 3, 64)
	data := make([]byte, 64)
	rand.New(rand.NewSource(6)).Read(data)
	orig := append([]byte(nil), data...)
	parity := c.Encode(data)
	flipBit(parity, 5)
	n, err := c.Decode(data, parity)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("data corrupted by parity correction")
	}
}

func TestCorrectUpToT(t *testing.T) {
	c := mustCode(t, 13, 8, 512)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		orig := make([]byte, 512)
		rng.Read(orig)
		parity := c.Encode(orig)
		data := append([]byte(nil), orig...)
		nerr := 1 + rng.Intn(8)
		flipped := make(map[int]bool)
		for len(flipped) < nerr {
			pos := rng.Intn(512 * 8)
			if !flipped[pos] {
				flipped[pos] = true
				flipBit(data, pos)
			}
		}
		n, err := c.Decode(data, parity)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if n != nerr {
			t.Fatalf("trial %d: corrected %d, want %d", trial, n, nerr)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("trial %d: data not restored", trial)
		}
	}
}

func TestDetectBeyondT(t *testing.T) {
	c := mustCode(t, 13, 4, 512)
	rng := rand.New(rand.NewSource(8))
	detected := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		orig := make([]byte, 512)
		rng.Read(orig)
		parity := c.Encode(orig)
		data := append([]byte(nil), orig...)
		// t+2 errors: beyond capability; decoder should refuse (the
		// guarantee is detection up to some margin, miscorrection is
		// possible in theory but must not happen silently here).
		flipped := make(map[int]bool)
		for len(flipped) < 6 {
			pos := rng.Intn(512 * 8)
			if !flipped[pos] {
				flipped[pos] = true
				flipBit(data, pos)
			}
		}
		if _, err := c.Decode(data, parity); err != nil {
			detected++
			// Failed decode must leave data unchanged except the
			// injected errors (no partial corrections).
			diff := 0
			for i := 0; i < 512*8; i++ {
				if bit(data, i) != bit(orig, i) {
					diff++
				}
			}
			if diff != 6 {
				t.Fatalf("trial %d: failed decode mutated data (%d diffs, want 6)", trial, diff)
			}
		}
	}
	if detected < trials*9/10 {
		t.Fatalf("detected only %d/%d beyond-t patterns", detected, trials)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	c := mustCode(t, 10, 4, 32)
	f := func(payload [32]byte, errPos []uint16) bool {
		data := append([]byte(nil), payload[:]...)
		parity := c.Encode(data)
		if len(errPos) > 4 {
			errPos = errPos[:4]
		}
		flipped := make(map[int]bool)
		for _, p := range errPos {
			pos := int(p) % (32 * 8)
			if flipped[pos] {
				continue
			}
			flipped[pos] = true
			flipBit(data, pos)
		}
		n, err := c.Decode(data, parity)
		if err != nil {
			return false
		}
		return n == len(flipped) && bytes.Equal(data, payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	c := mustCode(t, 13, 8, 512)
	data := make([]byte, 512)
	rand.New(rand.NewSource(9)).Read(data)
	p1 := c.Encode(data)
	p2 := c.Encode(data)
	if !bytes.Equal(p1, p2) {
		t.Fatal("Encode not deterministic")
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(13, 0, 512); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := New(4, 2, 16); err == nil {
		t.Fatal("unsupported m accepted")
	}
	// 2^10-1 = 1023 bits total; 512 bytes of data cannot fit.
	if _, err := New(10, 2, 512); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDecodeRejectsWrongSizes(t *testing.T) {
	c := mustCode(t, 10, 2, 32)
	data := make([]byte, 32)
	parity := c.Encode(data)
	if _, err := c.Decode(data[:31], parity); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := c.Decode(data, parity[:1]); err == nil {
		t.Fatal("short parity accepted")
	}
}

func BenchmarkEncode512B(b *testing.B) {
	c, err := New(13, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecodeClean512B(b *testing.B) {
	c, err := New(13, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(data)
	parity := c.Encode(data)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode4Errors512B(b *testing.B) {
	c, err := New(13, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	orig := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(orig)
	parity := c.Encode(orig)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := append([]byte(nil), orig...)
		p := append([]byte(nil), parity...)
		for _, pos := range []int{100, 999, 2048, 4000} {
			flipBit(data, pos)
		}
		if _, err := c.Decode(data, p); err != nil {
			b.Fatal(err)
		}
	}
}
