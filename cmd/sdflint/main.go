// Command sdflint checks the module against the determinism rules
// described in DESIGN.md ("Determinism rules" and "Whole-program
// analysis"): no wall-clock time in simulation code, no global
// math/rand, no goroutines outside the deterministic scheduler, no
// map iteration feeding ordered output — and, over a whole-module
// call graph, no blocking reachable from scheduler callbacks, no
// leaked trace spans, no dropped crash-consistency-critical errors,
// no racing selects or escaped spawns, no stale suppressions.
//
// Usage:
//
//	go run ./cmd/sdflint ./...
//	go run ./cmd/sdflint ./internal/ssd ./internal/ccdb/...
//	go run ./cmd/sdflint -list
//	go run ./cmd/sdflint -json ./...
//	go run ./cmd/sdflint -sarif sdflint.sarif ./...
//	go run ./cmd/sdflint -fix ./...
//
// Findings print as "file:line: [analyzer] message" (or as JSON with
// -json; -sarif additionally writes a SARIF 2.1.0 report). -fix
// applies the safe suggested edits — deleting stale //sdflint:allow
// directives, wrapping dropped critical errors in an error return —
// and re-checks. Exit status is 0 for a clean tree, 1 when findings
// were reported, 2 on usage or load errors. Individual lines can be
// waived with a mandatory-reason suppression comment:
// //sdflint:allow <analyzer> <reason>.
package main

import (
	"os"

	"sdf/internal/lint"
)

func main() {
	os.Exit(lint.Main(".", os.Args[1:], os.Stdout, os.Stderr))
}
