// Command sdflint checks the module against the determinism rules
// described in DESIGN.md ("Determinism rules"): no wall-clock time in
// simulation code, no global math/rand, no goroutines outside the
// deterministic scheduler, no map iteration feeding ordered output.
//
// Usage:
//
//	go run ./cmd/sdflint ./...
//	go run ./cmd/sdflint ./internal/ssd ./internal/ccdb/...
//	go run ./cmd/sdflint -list
//
// Findings print as "file:line: [analyzer] message". Exit status is 0
// for a clean tree, 1 when findings were reported, 2 on usage or load
// errors. Individual lines can be waived with a mandatory-reason
// suppression comment: //sdflint:allow <analyzer> <reason>.
package main

import (
	"os"

	"sdf/internal/lint"
)

func main() {
	os.Exit(lint.Main(".", os.Args[1:], os.Stdout, os.Stderr))
}
