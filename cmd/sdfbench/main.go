// Command sdfbench regenerates the SDF paper's evaluation tables and
// figures against the simulated devices and prints them in paper-style
// rows next to the published numbers.
//
// Usage:
//
//	sdfbench [-quick] [-list] [experiment ...]
//
// With no arguments every experiment runs in order. Experiment names
// are case-insensitive: table1, figure1, table4, figure7, figure8,
// figure10, figure11, figure12, figure13, figure14, stack, erase,
// and the ablations (stripe, buffer, erasesched, sdfop, interrupts,
// parity, staticwl).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdf/internal/experiments"
)

type entry struct {
	name string
	desc string
	run  func(experiments.Options) experiments.Table
}

var registry = []entry{
	{"table1", "commodity SSD raw vs measured bandwidth", experiments.Table1},
	{"figure1", "random-write throughput vs over-provisioning", experiments.Figure1},
	{"table4", "device throughput by request size", experiments.Table4},
	{"figure7", "SDF channel scaling", experiments.Figure7},
	{"figure8", "write latency traces", experiments.Figure8},
	{"figure10", "one slice, batched 512 KB reads", experiments.Figure10},
	{"figure11", "4/8 slices, batched 512 KB reads", experiments.Figure11},
	{"figure12", "request size x slice count at batch 44", experiments.Figure12},
	{"figure13", "sequential scan vs slice count", experiments.Figure13},
	{"figure14", "write + compaction throughput", experiments.Figure14},
	{"stack", "kernel vs user-space I/O path cost", experiments.SoftwareStack},
	{"erase", "SDF aggregate erase throughput", experiments.EraseThroughput},
	{"stripe", "ablation: striping unit", experiments.AblationStripeUnit},
	{"buffer", "ablation: DRAM write buffer", experiments.AblationWriteBuffer},
	{"erasesched", "ablation: erase scheduling", experiments.AblationEraseScheduling},
	{"sdfop", "ablation: over-provisioning on SDF", experiments.AblationSDFOverProvision},
	{"interrupts", "ablation: interrupt merging", experiments.AblationInterruptMerging},
	{"parity", "ablation: parity channels", experiments.AblationParity},
	{"staticwl", "ablation: static wear leveling", experiments.AblationStaticWL},
	{"readprio", "future work: reads over writes/erases", experiments.FutureWorkReadPriority},
	{"placement", "future work: load-balanced write placement", experiments.FutureWorkPlacement},
	{"activescan", "future work: in-storage filtered scan", experiments.FutureWorkActiveScan},
}

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}
	opts := experiments.Options{Quick: *quick}

	want := flag.Args()
	selected := registry
	if len(want) > 0 {
		selected = nil
		for _, name := range want {
			found := false
			for _, e := range registry {
				if strings.EqualFold(e.name, name) {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "sdfbench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
		}
	}
	for _, e := range selected {
		start := time.Now()
		tab := e.run(opts)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %.1fs wall)\n\n", e.name, time.Since(start).Seconds())
	}
}
