// Command sdfbench regenerates the SDF paper's evaluation tables and
// figures against the simulated devices and prints them in paper-style
// rows next to the published numbers.
//
// Usage:
//
//	sdfbench [-quick] [-list] [-json] [-parallel N] [-trace out.json] [experiment ...]
//
// With no arguments every experiment runs in order. Experiment names
// are case-insensitive: table1, figure1, table4, figure7, figure8,
// figure10, figure11, figure12, figure13, figure14, stack, erase,
// faults, recovery, and the ablations (stripe, buffer, erasesched,
// sdfop, interrupts, parity, staticwl).
//
// -parallel N runs up to N experiments concurrently. Experiments
// share no simulation state, so the tables are byte-identical to a
// sequential run; they are printed in registry order either way, and
// per-run wall-clock lines go to stderr so stdout stays deterministic.
//
// -json writes one BENCH_<experiment>.json per experiment with the raw
// measured metrics next to the formatted rows, plus a "perf" block
// (wall seconds, kernel events, events/sec) recording the host cost of
// the run. -trace collects virtual-time trace events from the
// experiments that support tracing (figure8, faults, recovery) and
// writes a Chrome
// trace-event file to the given path plus a canonical JSONL stream
// alongside it; both are deterministic, so two runs of the same
// experiment produce byte-identical files.
//
// -metrics turns on the observability pipeline in experiments that
// support it (currently faults): a labeled metrics registry scraped on
// a virtual-time period plus an SLO engine. Each such experiment
// writes METRICS_<experiment>.prom (Prometheus text snapshot) and
// METRICS_<experiment>.jsonl (sampled time series); both are
// byte-stable across reruns, and their SHA-256 hashes plus the SLO
// verdicts land in the bench JSON's "observability" block.
//
// -cpuprofile/-memprofile write pprof profiles of the harness itself,
// for finding simulator hot spots (see README "Performance").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sdf/internal/experiments"
	"sdf/internal/fault"
	"sdf/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "write BENCH_<experiment>.json per experiment")
	parallel := flag.Int("parallel", 1, "run up to N experiments concurrently")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace to this path (and JSONL alongside)")
	traceFull := flag.Bool("trace-full", false, "with -trace, also record kernel events (spawn/park/acquire/xfer)")
	faultsPath := flag.String("faults", "", "fault plan JSON for the faults experiment (default: built-in plan)")
	metricsOut := flag.Bool("metrics", false, "enable the observability pipeline; write METRICS_<experiment>.prom and .jsonl")
	flag.Parse()

	registry := experiments.Registry()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-12s %s\n", e.Name, e.Desc)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Metrics: *metricsOut}
	if *faultsPath != "" {
		pl, err := fault.Load(*faultsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(2)
		}
		opts.FaultPlan = pl
	}
	if *tracePath != "" {
		if *parallel > 1 {
			fmt.Fprintln(os.Stderr, "sdfbench: -trace needs a sequential run (the collector is shared); drop -parallel")
			os.Exit(2)
		}
		opts.Tracer = trace.NewCollector()
		if *traceFull {
			opts.Tracer.SetLevel(trace.LevelFull)
		}
	}

	want := flag.Args()
	selected := registry
	if len(want) > 0 {
		selected = nil
		for _, name := range want {
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "sdfbench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	results := experiments.RunAll(selected, opts, *parallel)
	for _, r := range results {
		fmt.Print(r.Table.String())
		fmt.Print("\n")
		fmt.Fprintf(os.Stderr, "(%s in %.1fs wall, %d events, %.2gM events/sec, %.2f allocs/event)\n",
			r.Name, r.Wall.Seconds(), r.Events, r.EventsPerSec()/1e6, r.AllocsPerEvent())
		if *jsonOut {
			if err := writeBenchJSON(r, opts.Quick); err != nil {
				fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsOut && r.Table.Observability != nil {
			if err := writeMetricsExports(r.Name, r.Table.Observability); err != nil {
				fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if opts.Tracer != nil {
		if err := writeTraces(*tracePath, opts.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// benchDoc is the machine-readable result schema for -json. Every
// field except Perf is determinism-sensitive: two runs of the same
// binary must produce identical values (sdfctl bench diff checks
// exactly that). Perf records the host cost and varies run to run.
type benchDoc struct {
	Experiment string             `json:"experiment"`
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Quick      bool               `json:"quick"`
	Header     []string           `json:"header"`
	Rows       [][]string         `json:"rows"`
	Notes      []string           `json:"notes,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// Observability carries the export fingerprints and SLO verdicts
	// when the experiment ran with -metrics; the raw exports go to
	// METRICS_<experiment>.prom/.jsonl instead of the bench JSON.
	Observability *experiments.Observability `json:"observability,omitempty"`
	Perf          *perfDoc                   `json:"perf,omitempty"`
}

// perfDoc is the wall-clock record that starts the perf trajectory:
// how fast the simulator itself ran this experiment, and how much it
// allocated doing so.
type perfDoc struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Envs           int     `json:"envs"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// writeBenchJSON writes BENCH_<name>.json into the current directory.
// encoding/json sorts map keys, so the output is deterministic apart
// from the perf block.
func writeBenchJSON(r experiments.Result, quick bool) error {
	tab := r.Table
	doc := benchDoc{
		Experiment:    r.Name,
		ID:            tab.ID,
		Title:         tab.Title,
		Quick:         quick,
		Header:        tab.Header,
		Rows:          tab.Rows,
		Notes:         tab.Notes,
		Metrics:       tab.Metrics,
		Observability: tab.Observability,
		Perf: &perfDoc{
			WallSeconds:    r.Wall.Seconds(),
			Events:         r.Events,
			EventsPerSec:   r.EventsPerSec(),
			Envs:           r.Envs,
			Allocs:         r.Allocs,
			AllocsPerEvent: r.AllocsPerEvent(),
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", r.Name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d metrics)\n", path, len(tab.Metrics))
	return nil
}

// writeMetricsExports writes the Prometheus snapshot and the sampled
// time series for one experiment into the current directory. Both are
// byte-stable across seeded reruns (make metrics-smoke checks that).
func writeMetricsExports(name string, obs *experiments.Observability) error {
	promPath := fmt.Sprintf("METRICS_%s.prom", name)
	if err := os.WriteFile(promPath, obs.Snapshot, 0o644); err != nil {
		return err
	}
	jsonlPath := fmt.Sprintf("METRICS_%s.jsonl", name)
	if err := os.WriteFile(jsonlPath, obs.Series, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (sha256 %s) and %s (sha256 %s), %d alerts\n",
		promPath, obs.SnapshotSHA256[:12], jsonlPath, obs.SeriesSHA256[:12], obs.Alerts)
	return nil
}

// writeTraces writes the Chrome trace to chromePath and the canonical
// JSONL stream next to it (same path with a .jsonl extension).
func writeTraces(chromePath string, c *trace.Collector) error {
	if c.Len() == 0 {
		fmt.Fprintln(os.Stderr, "sdfbench: no trace events collected (only figure8, faults and recovery emit traces)")
		return nil
	}
	chrome, err := os.Create(chromePath)
	if err != nil {
		return err
	}
	if err := c.WriteChrome(chrome); err != nil {
		chrome.Close()
		return err
	}
	if err := chrome.Close(); err != nil {
		return err
	}
	jsonlPath := strings.TrimSuffix(chromePath, ".json") + ".jsonl"
	jsonl, err := os.Create(jsonlPath)
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(jsonl); err != nil {
		jsonl.Close()
		return err
	}
	if err := jsonl.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s (%d events, sha256 %s)\n",
		chromePath, jsonlPath, c.Len(), c.Hash()[:12])
	return nil
}
