// Command sdfbench regenerates the SDF paper's evaluation tables and
// figures against the simulated devices and prints them in paper-style
// rows next to the published numbers.
//
// Usage:
//
//	sdfbench [-quick] [-list] [-json] [-trace out.json] [experiment ...]
//
// With no arguments every experiment runs in order. Experiment names
// are case-insensitive: table1, figure1, table4, figure7, figure8,
// figure10, figure11, figure12, figure13, figure14, stack, erase,
// and the ablations (stripe, buffer, erasesched, sdfop, interrupts,
// parity, staticwl).
//
// -json writes one BENCH_<experiment>.json per experiment with the raw
// measured metrics next to the formatted rows. -trace collects
// virtual-time trace events from the experiments that support tracing
// (figure8) and writes a Chrome trace-event file to the given path plus
// a canonical JSONL stream alongside it; both are deterministic, so two
// runs of the same experiment produce byte-identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdf/internal/experiments"
	"sdf/internal/fault"
	"sdf/internal/trace"
)

type entry struct {
	name string
	desc string
	run  func(experiments.Options) experiments.Table
}

var registry = []entry{
	{"table1", "commodity SSD raw vs measured bandwidth", experiments.Table1},
	{"figure1", "random-write throughput vs over-provisioning", experiments.Figure1},
	{"table4", "device throughput by request size", experiments.Table4},
	{"figure7", "SDF channel scaling", experiments.Figure7},
	{"figure8", "write latency traces", experiments.Figure8},
	{"figure10", "one slice, batched 512 KB reads", experiments.Figure10},
	{"figure11", "4/8 slices, batched 512 KB reads", experiments.Figure11},
	{"figure12", "request size x slice count at batch 44", experiments.Figure12},
	{"figure13", "sequential scan vs slice count", experiments.Figure13},
	{"figure14", "write + compaction throughput", experiments.Figure14},
	{"stack", "kernel vs user-space I/O path cost", experiments.SoftwareStack},
	{"erase", "SDF aggregate erase throughput", experiments.EraseThroughput},
	{"stripe", "ablation: striping unit", experiments.AblationStripeUnit},
	{"buffer", "ablation: DRAM write buffer", experiments.AblationWriteBuffer},
	{"erasesched", "ablation: erase scheduling", experiments.AblationEraseScheduling},
	{"sdfop", "ablation: over-provisioning on SDF", experiments.AblationSDFOverProvision},
	{"interrupts", "ablation: interrupt merging", experiments.AblationInterruptMerging},
	{"parity", "ablation: parity channels", experiments.AblationParity},
	{"staticwl", "ablation: static wear leveling", experiments.AblationStaticWL},
	{"readprio", "future work: reads over writes/erases", experiments.FutureWorkReadPriority},
	{"placement", "future work: load-balanced write placement", experiments.FutureWorkPlacement},
	{"activescan", "future work: in-storage filtered scan", experiments.FutureWorkActiveScan},
	{"faults", "availability under injected faults", experiments.Faults},
}

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "write BENCH_<experiment>.json per experiment")
	tracePath := flag.String("trace", "", "write a Chrome trace to this path (and JSONL alongside)")
	traceFull := flag.Bool("trace-full", false, "with -trace, also record kernel events (spawn/park/acquire/xfer)")
	faultsPath := flag.String("faults", "", "fault plan JSON for the faults experiment (default: built-in plan)")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}
	opts := experiments.Options{Quick: *quick}
	if *faultsPath != "" {
		pl, err := fault.Load(*faultsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(2)
		}
		opts.FaultPlan = pl
	}
	if *tracePath != "" {
		opts.Tracer = trace.NewCollector()
		if *traceFull {
			opts.Tracer.SetLevel(trace.LevelFull)
		}
	}

	want := flag.Args()
	selected := registry
	if len(want) > 0 {
		selected = nil
		for _, name := range want {
			found := false
			for _, e := range registry {
				if strings.EqualFold(e.name, name) {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "sdfbench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
		}
	}
	for _, e := range selected {
		start := time.Now()
		tab := e.run(opts)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %.1fs wall)\n\n", e.name, time.Since(start).Seconds())
		if *jsonOut {
			if err := writeBenchJSON(e.name, tab, opts.Quick); err != nil {
				fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if opts.Tracer != nil {
		if err := writeTraces(*tracePath, opts.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "sdfbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// benchDoc is the machine-readable result schema for -json.
type benchDoc struct {
	Experiment string             `json:"experiment"`
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Quick      bool               `json:"quick"`
	Header     []string           `json:"header"`
	Rows       [][]string         `json:"rows"`
	Notes      []string           `json:"notes,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// writeBenchJSON writes BENCH_<name>.json into the current directory.
// encoding/json sorts map keys, so the output is deterministic.
func writeBenchJSON(name string, tab experiments.Table, quick bool) error {
	doc := benchDoc{
		Experiment: name,
		ID:         tab.ID,
		Title:      tab.Title,
		Quick:      quick,
		Header:     tab.Header,
		Rows:       tab.Rows,
		Notes:      tab.Notes,
		Metrics:    tab.Metrics,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d metrics)\n\n", path, len(tab.Metrics))
	return nil
}

// writeTraces writes the Chrome trace to chromePath and the canonical
// JSONL stream next to it (same path with a .jsonl extension).
func writeTraces(chromePath string, c *trace.Collector) error {
	if c.Len() == 0 {
		fmt.Fprintln(os.Stderr, "sdfbench: no trace events collected (only figure8 and faults emit traces)")
		return nil
	}
	chrome, err := os.Create(chromePath)
	if err != nil {
		return err
	}
	if err := c.WriteChrome(chrome); err != nil {
		chrome.Close()
		return err
	}
	if err := chrome.Close(); err != nil {
		return err
	}
	jsonlPath := strings.TrimSuffix(chromePath, ".json") + ".jsonl"
	jsonl, err := os.Create(jsonlPath)
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(jsonl); err != nil {
		jsonl.Close()
		return err
	}
	if err := jsonl.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s (%d events, sha256 %s)\n",
		chromePath, jsonlPath, c.Len(), c.Hash()[:12])
	return nil
}
