// Command sdfctl inspects and exercises a simulated SDF device, the
// way an operator pokes at /dev/sda0../dev/sda43 on a production box.
//
// Usage:
//
//	sdfctl [-channels N] [-blocks N] <command>
//
// Commands:
//
//	info      print device geometry and bandwidth envelope
//	exercise  erase/write/read every channel once and report timing
//	wear      hammer one channel and report wear leveling and ECC stats
//	stack     compare the kernel and bypass software paths
//
//	trace summarize <file.jsonl>
//	          read a JSONL trace written by sdfbench -trace and print
//	          the per-stage latency breakdown (count/mean/p50/p99 per
//	          phase per device)
//
//	bench diff <a.json> <b.json>
//	          compare two BENCH_<experiment>.json files on their
//	          determinism-sensitive fields, ignoring the "perf" block
//	          (host wall-clock, events/sec); exit 1 on any difference
//
//	faults [plan.json]
//	          validate a fault plan and print its schedule; with no
//	          argument, print the availability experiment's built-in
//	          plan
//
//	metrics summarize <file.prom>
//	          read a Prometheus snapshot written by sdfbench -metrics
//	          and print one line per metric family (type, series count,
//	          value spread)
//
//	metrics query <file.jsonl> <pattern>
//	          print every sampled time series whose ID contains the
//	          pattern: point count, time span, first/last/min/max
//
//	metrics diff <a> <b>
//	          compare two metrics exports (.prom or .jsonl) series by
//	          series; exit 1 on any difference
//
//	slo report [-full] [plan.json]
//	          run the availability experiment with the observability
//	          pipeline on and print each objective's verdict and error
//	          budget burn (quick windows by default; -full runs the
//	          full-length experiment)
//
//	recovery report <BENCH_recovery.json>
//	          print the recovery experiment's checkpoint and journal
//	          stats per fill level and enforce the bounded-recovery
//	          contract: checkpointed probe counts must stay roughly
//	          flat across the fill sweep (and beat the full scan at
//	          every fill), and journal replay must cover only the
//	          post-truncation tail; exit 1 on any violation
//
//	codesign report <BENCH_codesign.json>
//	          print the co-scheduling experiment's read-tail comparison
//	          and enforce the co-design contract: coordination must
//	          improve SDF read p99 at matched read rates (<=15% skew),
//	          the steady-state run must never fall back to forced
//	          erases, the coordinated cluster must hold its p99 SLO
//	          within budget, and the chaos stage must lose no
//	          acknowledged data while staying above a zero availability
//	          floor; exit 1 on any violation
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"sdf/internal/core"
	"sdf/internal/experiments"
	"sdf/internal/fault"
	"sdf/internal/flashchan"
	"sdf/internal/hostif"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

func main() {
	channels := flag.Int("channels", 44, "flash channels")
	blocks := flag.Int("blocks", 16, "erase blocks per plane (scaled geometry)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sdfctl [-channels N] [-blocks N] info|exercise|wear|stack|trace|bench|faults|metrics|slo")
		os.Exit(2)
	}

	switch flag.Arg(0) {
	case "info":
		info(*channels, *blocks)
	case "exercise":
		exercise(*channels, *blocks)
	case "wear":
		wear()
	case "stack":
		stack()
	case "trace":
		if flag.NArg() != 3 || flag.Arg(1) != "summarize" {
			fmt.Fprintln(os.Stderr, "usage: sdfctl trace summarize <file.jsonl>")
			os.Exit(2)
		}
		traceSummarize(flag.Arg(2))
	case "bench":
		args := flag.Args()[1:]
		perf := false
		if len(args) > 1 && args[1] == "-perf" {
			perf = true
			args = append(args[:1], args[2:]...)
		}
		if len(args) != 3 || args[0] != "diff" {
			fmt.Fprintln(os.Stderr, "usage: sdfctl bench diff [-perf] <a.json> <b.json>")
			os.Exit(2)
		}
		if perf {
			benchPerfDiff(args[1], args[2])
		} else {
			benchDiff(args[1], args[2])
		}
	case "faults":
		if flag.NArg() > 2 {
			fmt.Fprintln(os.Stderr, "usage: sdfctl faults [plan.json]")
			os.Exit(2)
		}
		path := ""
		if flag.NArg() == 2 {
			path = flag.Arg(1)
		}
		faults(path)
	case "metrics":
		switch {
		case flag.NArg() == 3 && flag.Arg(1) == "summarize":
			metricsSummarize(flag.Arg(2))
		case flag.NArg() == 4 && flag.Arg(1) == "query":
			metricsQuery(flag.Arg(2), flag.Arg(3))
		case flag.NArg() == 4 && flag.Arg(1) == "diff":
			metricsDiff(flag.Arg(2), flag.Arg(3))
		default:
			fmt.Fprintln(os.Stderr, "usage: sdfctl metrics summarize <file.prom> | query <file.jsonl> <pattern> | diff <a> <b>")
			os.Exit(2)
		}
	case "slo":
		args := flag.Args()[1:]
		quick := true
		if len(args) > 1 && args[1] == "-full" {
			quick = false
			args = append(args[:1], args[2:]...)
		}
		if len(args) < 1 || args[0] != "report" || len(args) > 2 {
			fmt.Fprintln(os.Stderr, "usage: sdfctl slo report [-full] [plan.json]")
			os.Exit(2)
		}
		planPath := ""
		if len(args) == 2 {
			planPath = args[1]
		}
		sloReport(planPath, quick)
	case "recovery":
		if flag.NArg() != 3 || flag.Arg(1) != "report" {
			fmt.Fprintln(os.Stderr, "usage: sdfctl recovery report <BENCH_recovery.json>")
			os.Exit(2)
		}
		recoveryReport(flag.Arg(2))
	case "codesign":
		if flag.NArg() != 3 || flag.Arg(1) != "report" {
			fmt.Fprintln(os.Stderr, "usage: sdfctl codesign report <BENCH_codesign.json>")
			os.Exit(2)
		}
		codesignReport(flag.Arg(2))
	default:
		fmt.Fprintf(os.Stderr, "sdfctl: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// recoveryReport reads a BENCH_recovery.json written by sdfbench,
// prints the checkpoint and journal stats behind the recovery table,
// and enforces the bounded-recovery contract the checkpoint and the
// truncating journal exist to provide. CI's recovery-smoke runs it so
// a regression that quietly reverts recovery to O(device fill) fails
// the build, not just the eyeball.
func recoveryReport(path string) {
	doc := loadBenchFields(path)
	metricsAny, ok := doc["metrics"].(map[string]any)
	if !ok {
		log.Fatalf("%s: no metrics block", path)
	}
	met := func(key string) float64 {
		v, ok := metricsAny[key].(float64)
		if !ok {
			log.Fatalf("%s: metric %q missing", path, key)
		}
		return v
	}
	rows, _ := doc["rows"].([]any)
	var fills []string
	for _, r := range rows {
		cells, _ := r.([]any)
		if len(cells) > 0 {
			if fill, _ := cells[0].(string); len(fill) > 1 {
				fills = append(fills, fill[:len(fill)-1])
			}
		}
	}
	if len(fills) == 0 {
		log.Fatalf("%s: no fill rows", path)
	}

	violations := 0
	fmt.Printf("checkpointed recovery bound (%s):\n", path)
	fmt.Printf("  %-6s %14s %14s %10s %12s %12s\n",
		"fill", "scan probes", "cp probes", "cp hits", "scan time", "cp time")
	for _, f := range fills {
		full := met("recovery_probed_pages_f" + f)
		cp := met("recovery_cp_probed_pages_f" + f)
		verdict := ""
		if cp <= 0 || cp >= full {
			verdict = "  VIOLATED: checkpointed scan not cheaper than full scan"
			violations++
		}
		fmt.Printf("  %-6s %14.0f %14.0f %10.0f %9.2f ms %9.2f ms%s\n",
			f+"%", full, cp,
			met("recovery_cp_hits_f"+f),
			met("recovery_ms_f"+f), met("recovery_cp_ms_f"+f), verdict)
	}
	cpLo := met("recovery_cp_probed_pages_f" + fills[0])
	cpHi := met("recovery_cp_probed_pages_f" + fills[len(fills)-1])
	fmt.Printf("  cp probe spread %.0f -> %.0f across the sweep (%.2fx; full scan %.0f -> %.0f)\n",
		cpLo, cpHi, cpHi/cpLo,
		met("recovery_probed_pages_f"+fills[0]),
		met("recovery_probed_pages_f"+fills[len(fills)-1]))
	if cpHi > 2*cpLo {
		fmt.Println("  VIOLATED: checkpointed probes grew with fill; recovery is not bounded by post-checkpoint writes")
		violations++
	}

	acked := met("recovery_journal_puts_acked")
	truncated := met("recovery_journal_truncated_puts")
	replayed := met("recovery_journal_replayed")
	fmt.Printf("journal: %.0f puts acked, %.0f truncated at the flush watermark, %.0f replayed at remount (%.0f B of log at the crash)\n",
		acked, truncated, replayed, met("recovery_journal_bytes_at_crash"))
	if truncated == 0 {
		fmt.Println("  VIOLATED: journal never truncated; replay is unbounded")
		violations++
	}
	if replayed == 0 || replayed >= acked {
		fmt.Println("  VIOLATED: journal replay not bounded to the post-truncation tail")
		violations++
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "sdfctl: %d bounded-recovery violations in %s\n", violations, path)
		os.Exit(1)
	}
	fmt.Println("bounded-recovery contract holds")
}

// codesignReport reads a BENCH_codesign.json written by sdfbench,
// prints the erase/write co-scheduling comparison, and enforces the
// co-design contract behind it. CI's codesign-smoke runs it so a
// change that quietly breaks the coordination win — or regresses the
// chaos stage into losing acknowledged data — fails the build.
func codesignReport(path string) {
	doc := loadBenchFields(path)
	metricsAny, ok := doc["metrics"].(map[string]any)
	if !ok {
		log.Fatalf("%s: no metrics block", path)
	}
	met := func(key string) float64 {
		v, ok := metricsAny[key].(float64)
		if !ok {
			log.Fatalf("%s: metric %q missing", path, key)
		}
		return v
	}

	violations := 0
	violated := func(format string, args ...any) {
		fmt.Printf("  VIOLATED: "+format+"\n", args...)
		violations++
	}

	fmt.Printf("erase/write co-scheduling (%s):\n", path)
	fmt.Printf("  %-18s %10s %10s %10s\n", "", "coord", "nocoord", "gen3")
	for _, r := range [][2]string{
		{"read p99 (ms)", "p99_ms"},
		{"read p999 (ms)", "p999_ms"},
		{"reads/s", "reads_per_s"},
		{"writes acked/s", "writes_per_s"},
		{"SLO p99 burn", "slo_p99_burn"},
	} {
		fmt.Printf("  %-18s %10.3f %10.3f %10.3f\n", r[0],
			met("coord."+r[1]), met("nocoord."+r[1]), met("gen3."+r[1]))
	}
	fmt.Printf("  windows: %.0f granted, %.0f deferred, %.0f forced; %.0f reads routed around windows; %.0f writes delayed, %.0f shed\n",
		met("coord.window_grants"), met("coord.deferred"), met("coord.forced"),
		met("coord.window_deprioritized"), met("coord.delayed_writes"), met("coord.shed_writes"))
	fmt.Printf("  chaos: floor %.0f B/s, %.0f lost, %.0f best-effort writes, %.0f forced erases, %.0f remounts, burn %.2f\n",
		met("chaos.floor"), met("chaos.lost"), met("chaos.best_effort"),
		met("chaos.forced"), met("chaos.remounts"), met("chaos.slo_p99_burn"))

	if c, n := met("coord.p99_ms"), met("nocoord.p99_ms"); c >= n {
		violated("coordination did not improve read p99 (%.3fms vs %.3fms uncoordinated)", c, n)
	}
	base := met("coord.reads_per_s")
	for _, k := range []string{"nocoord.reads_per_s", "gen3.reads_per_s"} {
		if skew := math.Abs(met(k)-base) / base; skew > 0.15 {
			violated("%s skews %.0f%% from the coordinated cluster; the tail comparison is not at equal throughput", k, skew*100)
		}
	}
	if f := met("coord.forced"); f != 0 {
		violated("%.0f forced erases in the steady-state run; the window rotation is starving members", f)
	}
	if b := met("coord.slo_p99_burn"); b > 1 {
		violated("coordinated cluster overspent its p99 error budget (burn %.2f)", b)
	}
	if l := met("chaos.lost"); l != 0 {
		violated("chaos stage lost %.0f acknowledged reads", l)
	}
	if f := met("chaos.floor"); f <= 0 {
		violated("chaos availability floor is zero; the cluster went fully dark")
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "sdfctl: %d co-design violations in %s\n", violations, path)
		os.Exit(1)
	}
	fmt.Println("co-design contract holds")
}

// benchDiff compares two BENCH_<experiment>.json files on their
// determinism-sensitive fields — everything except the "perf" block,
// which records the host wall-clock of the run and legitimately
// varies. Matching files exit 0; any other difference lists the
// offending fields and exits 1. CI's bench-smoke and chaos-smoke use
// it to assert that reruns and parallel runs reproduce the same
// numbers while still letting the recorded events/sec move.
func benchDiff(pathA, pathB string) {
	a := loadBenchFields(pathA)
	b := loadBenchFields(pathB)
	delete(a, "perf")
	delete(b, "perf")
	keys := make(map[string]bool)
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		// json.Marshal sorts map keys, so equal values marshal equal.
		ja, _ := json.Marshal(a[k])
		jb, _ := json.Marshal(b[k])
		if !bytes.Equal(ja, jb) {
			diffs = append(diffs, k)
		}
	}
	if len(diffs) == 0 {
		fmt.Printf("%s and %s match on all determinism-sensitive fields\n", pathA, pathB)
		return
	}
	sort.Strings(diffs)
	for _, k := range diffs {
		fmt.Fprintf(os.Stderr, "sdfctl: field %q differs between %s and %s\n", k, pathA, pathB)
	}
	os.Exit(1)
}

// benchPerfDiff compares the host-cost "perf" blocks of two
// BENCH_<experiment>.json files — the one pair of fields benchDiff
// deliberately ignores. It prints the throughput trajectory (events,
// wall time, events/sec, allocs/event) from a to b, so `sdfctl bench
// diff -perf bench/baseline/BENCH_figure7.json BENCH_figure7.json`
// answers "how much faster is the kernel than the recorded baseline".
// Informational only: it always exits 0 on well-formed inputs.
func benchPerfDiff(pathA, pathB string) {
	perfOf := func(path string) map[string]float64 {
		doc := loadBenchFields(path)
		raw, ok := doc["perf"].(map[string]any)
		if !ok {
			log.Fatalf("%s: no perf block", path)
		}
		p := make(map[string]float64)
		for k, v := range raw {
			if f, ok := v.(float64); ok {
				p[k] = f
			}
		}
		return p
	}
	a, b := perfOf(pathA), perfOf(pathB)
	fmt.Printf("perf delta (%s -> %s):\n", pathA, pathB)
	row := func(label, key, format string, scale float64) {
		va, oka := a[key]
		vb, okb := b[key]
		if !oka && !okb {
			return
		}
		line := fmt.Sprintf("  %-13s "+format+" -> "+format, label, va*scale, vb*scale)
		if oka && okb && va != 0 {
			line += fmt.Sprintf("   (%+.1f%%)", (vb-va)/va*100)
		} else if !oka {
			line += "   (no baseline)"
		}
		fmt.Println(line)
	}
	row("events", "events", "%.0f", 1)
	row("wall", "wall_seconds", "%.2fs", 1)
	row("events/sec", "events_per_sec", "%.2fM", 1e-6)
	row("allocs/event", "allocs_per_event", "%.3f", 1)
}

func loadBenchFields(path string) map[string]any {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return doc
}

// traceSummarize reads a canonical JSONL trace and prints the
// per-(device, phase, span) latency table.
func traceSummarize(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.Summarize(events)
	if len(stats) == 0 {
		fmt.Println("no completed spans in trace")
		return
	}
	fmt.Printf("%d events, %d span groups\n\n", len(events), len(stats))
	fmt.Print(trace.FormatSummary(stats))
}

// faults validates and pretty-prints a fault plan; with no path it
// shows the availability experiment's built-in schedule.
func faults(path string) {
	var pl *fault.Plan
	if path == "" {
		pl = experiments.DefaultAvailabilityPlan()
		if err := pl.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("built-in availability plan (override with sdfbench -faults <plan.json>):")
	} else {
		var err error
		if pl, err = fault.Load(path); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(pl.String())
}

func newDevice(channels, blocks int) (*sim.Env, *core.Device) {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Channels = channels
	cfg.Channel.Nand.BlocksPerPlane = blocks
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return env, dev
}

func info(channels, blocks int) {
	env, dev := newDevice(channels, blocks)
	defer env.Close()
	fmt.Printf("channels:            %d (exposed as independent devices)\n", dev.Channels())
	fmt.Printf("write/erase unit:    %d MiB (block-aligned)\n", dev.BlockSize()>>20)
	fmt.Printf("read unit:           %d KiB\n", dev.PageSize()>>10)
	fmt.Printf("blocks per channel:  %d\n", dev.BlocksPerChannel())
	fmt.Printf("usable capacity:     %.2f GiB\n", float64(dev.Capacity())/(1<<30))
	fmt.Printf("raw capacity:        %.2f GiB (%.1f%% exposed)\n",
		float64(dev.RawCapacity())/(1<<30),
		100*float64(dev.Capacity())/float64(dev.RawCapacity()))
	fmt.Printf("raw read bandwidth:  %.2f GB/s (channel-bus limited)\n", dev.RawReadBandwidth()/1e9)
	fmt.Printf("raw write bandwidth: %.2f GB/s (program limited)\n", dev.RawWriteBandwidth()/1e9)
	fmt.Printf("host interface:      PCIe 1.1 x8 (1.61/1.40 GB/s effective)\n")
}

func exercise(channels, blocks int) {
	env, dev := newDevice(channels, blocks)
	var erase, write, read metrics.Series
	var workers []*sim.Proc
	for ch := 0; ch < dev.Channels(); ch++ {
		ch := ch
		w := env.Go("exercise", func(p *sim.Proc) {
			t0 := env.Now()
			if err := dev.Erase(p, ch, 0); err != nil {
				log.Fatal(err)
			}
			erase.Observe(env.Now() - t0)
			t0 = env.Now()
			if err := dev.Write(p, ch, 0, nil); err != nil {
				log.Fatal(err)
			}
			write.Observe(env.Now() - t0)
			t0 = env.Now()
			if _, err := dev.Read(p, ch, 0, 0, dev.BlockSize()); err != nil {
				log.Fatal(err)
			}
			read.Observe(env.Now() - t0)
		})
		workers = append(workers, w)
	}
	waiter := env.Go("wait", func(p *sim.Proc) {
		for _, w := range workers {
			p.Join(w)
		}
	})
	env.RunUntilDone(waiter)
	total := int64(dev.Channels()) * int64(dev.BlockSize())
	elapsed := env.Now()
	env.Close()
	fmt.Printf("all %d channels: erase+write+read one 8 MiB block each\n", dev.Channels())
	fmt.Printf("erase:  mean %v (min %v, max %v)\n", erase.Mean(), erase.Min(), erase.Max())
	fmt.Printf("write:  mean %v (min %v, max %v)\n", write.Mean(), write.Min(), write.Max())
	fmt.Printf("read:   mean %v (min %v, max %v)\n", read.Mean(), read.Min(), read.Max())
	fmt.Printf("moved %d MiB in %v of device time\n", 2*total>>20, elapsed.Round(time.Millisecond))
}

func wear() {
	env := sim.NewEnv()
	cfg := flashchan.DefaultConfig()
	cfg.Nand.BlocksPerPlane = 12
	cfg.Nand.PagesPerBlock = 16
	cfg.Nand.EraseLimit = 100
	cfg.SparePerPlane = 3
	cfg.Seed = 1
	ch, err := flashchan.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := env.Go("wear", func(p *sim.Proc) {
		cycles := 0
		for {
			if err := ch.EraseWrite(p, cycles%ch.LogicalBlocks(), nil); err != nil {
				break
			}
			cycles++
		}
		st := ch.Wear()
		fmt.Printf("channel wore out after %d erase+write cycles\n", cycles)
		fmt.Printf("erase counts: %d..%d (dynamic wear leveling)\n", st.MinErase, st.MaxErase)
		fmt.Printf("bad blocks retired: %d\n", st.BadBlocks)
	})
	env.RunUntilDone(w)
	env.Close()
}

func stack() {
	env := sim.NewEnv()
	defer env.Close()
	kernel := hostif.NewStack(env, hostif.KernelStack())
	bypass := hostif.NewStack(env, hostif.BypassStack())
	fmt.Printf("kernel I/O stack:   %v per request\n", kernel.PerRequestCost())
	fmt.Printf("user-space bypass:  %v per request (interrupts merged 4-way)\n", bypass.PerRequestCost())
	fmt.Printf("ratio:              %.1fx\n",
		float64(kernel.PerRequestCost())/float64(bypass.PerRequestCost()))
}
