package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdf/internal/experiments"
	"sdf/internal/fault"
)

// metricsSummarize reads a Prometheus text snapshot written by
// sdfbench -metrics and prints one line per metric family: its type,
// how many labeled series it holds, and the value spread.
func metricsSummarize(path string) {
	families, order := readProm(path)
	fmt.Printf("%s: %d series in %d families\n\n", path, countSeries(families), len(order))
	fmt.Printf("%-42s %-9s %7s %14s %14s\n", "family", "type", "series", "min", "max")
	for _, name := range order {
		f := families[name]
		min, max := f.series[0].value, f.series[0].value
		for _, s := range f.series[1:] {
			if s.value < min {
				min = s.value
			}
			if s.value > max {
				max = s.value
			}
		}
		fmt.Printf("%-42s %-9s %7d %14s %14s\n", name, f.typ, len(f.series),
			strconv.FormatFloat(min, 'g', 6, 64), strconv.FormatFloat(max, 'g', 6, 64))
	}
}

// metricsQuery reads a metrics JSONL time series written by sdfbench
// -metrics and prints every series whose ID contains the pattern:
// point count, time span, and first/last/min/max values.
func metricsQuery(path, pattern string) {
	rows := readSeriesJSONL(path)
	matched := 0
	for _, r := range rows {
		if !strings.Contains(r.Series, pattern) {
			continue
		}
		matched++
		if len(r.Points) == 0 {
			fmt.Printf("%s: no points\n", r.Series)
			continue
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		min, max := first[1], first[1]
		for _, p := range r.Points[1:] {
			if p[1] < min {
				min = p[1]
			}
			if p[1] > max {
				max = p[1]
			}
		}
		fmt.Printf("%s\n  %d points over %v..%v  first %g  last %g  min %g  max %g\n",
			r.Series, len(r.Points),
			time.Duration(int64(first[0])), time.Duration(int64(last[0])),
			first[1], last[1], min, max)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "sdfctl: no series matching %q in %s\n", pattern, path)
		os.Exit(1)
	}
}

// metricsDiff compares two metrics exports (either two .prom snapshots
// or two .jsonl series files) series by series and exits 1 on any
// difference, listing the offending series IDs.
func metricsDiff(pathA, pathB string) {
	a := readExportKeyed(pathA)
	b := readExportKeyed(pathB)
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		va, okA := a[k]
		vb, okB := b[k]
		switch {
		case !okA:
			diffs = append(diffs, k+" (only in "+pathB+")")
		case !okB:
			diffs = append(diffs, k+" (only in "+pathA+")")
		case va != vb:
			diffs = append(diffs, k)
		}
	}
	if len(diffs) == 0 {
		fmt.Printf("%s and %s match on all %d series\n", pathA, pathB, len(a))
		return
	}
	sort.Strings(diffs)
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "sdfctl: series differs: %s\n", d)
	}
	os.Exit(1)
}

// sloReport runs the availability experiment with the observability
// pipeline on and prints the SLO engine's verdict per objective — the
// operator view of "did the cluster hold its promises under faults".
// An optional fault-plan path overrides the built-in chaos schedule.
func sloReport(planPath string, quick bool) {
	opts := experiments.Options{Quick: quick, Metrics: true}
	if planPath != "" {
		pl, err := fault.Load(planPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.FaultPlan = pl
	}
	tab := experiments.Faults(opts)
	obs := tab.Observability
	if obs == nil {
		log.Fatal("faults experiment returned no observability payload")
	}
	fmt.Printf("SLO report: faults experiment, %d alerts emitted\n\n", obs.Alerts)
	missed := 0
	for _, r := range obs.SLO {
		fmt.Println(r.String())
		if !r.Met {
			missed++
		}
	}
	fmt.Printf("\nsnapshot sha256 %s  series sha256 %s\n", obs.SnapshotSHA256[:12], obs.SeriesSHA256[:12])
	if missed > 0 {
		fmt.Printf("%d of %d objectives missed\n", missed, len(obs.SLO))
	} else {
		fmt.Printf("all %d objectives met\n", len(obs.SLO))
	}
}

// promFamily is one metric family from a text snapshot.
type promFamily struct {
	typ    string
	series []promSeries
}

type promSeries struct {
	id    string
	value float64
}

// readProm parses the subset of the Prometheus text format that the
// exporter writes: "# TYPE name type" headers followed by
// "name{labels} value" samples. Returns families keyed by name plus
// the file's (sorted) family order.
func readProm(path string) (map[string]*promFamily, []string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	families := make(map[string]*promFamily)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				log.Fatalf("%s: malformed TYPE line %q", path, line)
			}
			families[parts[2]] = &promFamily{typ: parts[3]}
			order = append(order, parts[2])
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			log.Fatalf("%s: malformed sample line %q", path, line)
		}
		id, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			log.Fatalf("%s: bad value in %q: %v", path, line, err)
		}
		name := id
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// Histogram samples (name_bucket, name_sum, name_count) belong
		// to the family declared for the bare name.
		fam := families[name]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam == nil && strings.HasSuffix(name, suffix) {
				fam = families[strings.TrimSuffix(name, suffix)]
			}
		}
		if fam == nil {
			log.Fatalf("%s: sample %q has no TYPE header", path, id)
		}
		fam.series = append(fam.series, promSeries{id: id, value: v})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(order) == 0 {
		log.Fatalf("%s: no metric families found", path)
	}
	return families, order
}

func countSeries(families map[string]*promFamily) int {
	n := 0
	for _, f := range families {
		n += len(f.series)
	}
	return n
}

// seriesRow is one line of the JSONL time-series export.
type seriesRow struct {
	Series string       `json:"series"`
	Points [][2]float64 `json:"points"`
}

func readSeriesJSONL(path string) []seriesRow {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var rows []seriesRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r seriesRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return rows
}

// readExportKeyed loads either export format as series-ID → canonical
// content, for diffing.
func readExportKeyed(path string) map[string]string {
	out := make(map[string]string)
	if strings.HasSuffix(path, ".jsonl") {
		for _, r := range readSeriesJSONL(path) {
			pts, _ := json.Marshal(r.Points)
			out[r.Series] = string(pts)
		}
		return out
	}
	families, _ := readProm(path)
	for _, f := range families {
		for _, s := range f.series {
			out[s.id] = strconv.FormatFloat(s.value, 'g', -1, 64)
		}
	}
	return out
}
