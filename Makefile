# Single source of truth for the checks: CI (.github/workflows/ci.yml)
# calls these same targets, so local `make check` reproduces the gate.

GO ?= go

.PHONY: all build vet test race lint check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs sdflint, the determinism static-analysis suite
# (see DESIGN.md "Determinism rules" and internal/lint).
lint:
	$(GO) run ./cmd/sdflint ./...

check: build vet race lint
