# Single source of truth for the checks: CI (.github/workflows/ci.yml)
# calls these same targets, so local `make check` reproduces the gate.

GO ?= go

.PHONY: all build vet test race lint trace-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs sdflint, the determinism static-analysis suite
# (see DESIGN.md "Determinism rules" and internal/lint).
lint:
	$(GO) run ./cmd/sdflint ./...

# trace-smoke runs one traced experiment twice and requires the trace
# files to be byte-identical — the end-to-end form of the determinism
# guarantee the replay tests check in-process.
trace-smoke:
	$(GO) run ./cmd/sdfbench -quick -trace trace-a.json figure8
	$(GO) run ./cmd/sdfbench -quick -trace trace-b.json figure8
	cmp trace-a.json trace-b.json
	cmp trace-a.jsonl trace-b.jsonl
	$(GO) run ./cmd/sdfctl trace summarize trace-a.jsonl
	rm -f trace-b.json trace-b.jsonl

check: build vet race lint
