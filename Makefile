# Single source of truth for the checks: CI (.github/workflows/ci.yml)
# calls these same targets, so local `make check` reproduces the gate.

GO ?= go

.PHONY: all build vet test race lint trace-smoke chaos-smoke recovery-smoke codesign-smoke bench-smoke metrics-smoke kernel-bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments binary runs every table twice (sequential vs
# parallel runner) under ~20x race overhead; the default per-binary
# 600s timeout no longer fits it.
race:
	$(GO) test -race -timeout 1200s ./...

# lint runs sdflint, the determinism static-analysis suite
# (see DESIGN.md "Determinism rules" and "Whole-program analysis",
# internal/lint). The SARIF report feeds code-scanning UIs; CI
# uploads it as an artifact.
lint:
	$(GO) run ./cmd/sdflint -sarif sdflint.sarif ./...

# trace-smoke runs one traced experiment twice and requires the trace
# files to be byte-identical — the end-to-end form of the determinism
# guarantee the replay tests check in-process.
trace-smoke:
	$(GO) run ./cmd/sdfbench -quick -trace trace-a.json figure8
	$(GO) run ./cmd/sdfbench -quick -trace trace-b.json figure8
	cmp trace-a.json trace-b.json
	cmp trace-a.jsonl trace-b.jsonl
	$(GO) run ./cmd/sdfctl trace summarize trace-a.jsonl
	rm -f trace-b.json trace-b.jsonl

# chaos-smoke runs the fault-injected availability experiment twice
# under the built-in plan and requires byte-identical traces and bench
# JSON — the replay guarantee must hold even while channels die, nodes
# crash, and links degrade (DESIGN.md "Fault model & degraded mode").
chaos-smoke:
	$(GO) run ./cmd/sdfctl faults
	$(GO) run ./cmd/sdfbench -quick -json -trace chaos-a.json faults
	mv BENCH_faults.json BENCH_faults_a.json
	$(GO) run ./cmd/sdfbench -quick -json -trace chaos-b.json faults
	cmp chaos-a.json chaos-b.json
	cmp chaos-a.jsonl chaos-b.jsonl
	$(GO) run ./cmd/sdfctl bench diff BENCH_faults_a.json BENCH_faults.json
	rm -f chaos-b.json chaos-b.jsonl BENCH_faults_a.json

# recovery-smoke runs the crash-and-remount experiment — including
# its scheduled recurring-powerloss plan — twice and requires
# byte-identical recovery traces and bench JSON: the same media
# damage, the same mount-time scan, the same recovery latency, every
# run. It then checks the bounded-recovery contract through the
# operator tooling: checkpointed probe counts must stay roughly flat
# across the fill sweep and journal replay must cover only the
# post-truncation tail (DESIGN.md "Crash consistency & recovery",
# "Bounded recovery").
recovery-smoke:
	$(GO) run ./cmd/sdfbench -quick -json -trace recovery-a.json recovery
	mv BENCH_recovery.json BENCH_recovery_a.json
	$(GO) run ./cmd/sdfbench -quick -json -trace recovery-b.json recovery
	cmp recovery-a.json recovery-b.json
	cmp recovery-a.jsonl recovery-b.jsonl
	$(GO) run ./cmd/sdfctl bench diff BENCH_recovery_a.json BENCH_recovery.json
	$(GO) run ./cmd/sdfctl recovery report BENCH_recovery.json
	rm -f recovery-b.json recovery-b.jsonl BENCH_recovery_a.json

# codesign-smoke runs the erase/write co-scheduling experiment twice
# and requires byte-identical traces and bench JSON, then enforces the
# co-design contract through the operator tooling: coordination must
# improve SDF read p99 at matched read rates, the steady-state run
# must never fall back to forced erases, and the chaos stage must lose
# no acknowledged data (DESIGN.md "Erase/write co-scheduling").
codesign-smoke:
	$(GO) run ./cmd/sdfbench -quick -json -trace codesign-a.json codesign
	mv BENCH_codesign.json BENCH_codesign_a.json
	$(GO) run ./cmd/sdfbench -quick -json -trace codesign-b.json codesign
	cmp codesign-a.json codesign-b.json
	cmp codesign-a.jsonl codesign-b.jsonl
	$(GO) run ./cmd/sdfctl bench diff BENCH_codesign_a.json BENCH_codesign.json
	$(GO) run ./cmd/sdfctl codesign report BENCH_codesign.json
	rm -f codesign-b.json codesign-b.jsonl BENCH_codesign_a.json

# metrics-smoke runs the fault-injected availability experiment twice
# with the observability pipeline on and requires byte-identical
# Prometheus snapshots and metrics JSONL (DESIGN.md "Metrics & SLOs").
# It then checks the headline SLO result through the operator tooling:
# sdfctl slo report must show SDF meeting — and parity Gen3 violating —
# the 1ms p99 read-latency objective under the built-in chaos plan.
metrics-smoke:
	$(GO) run ./cmd/sdfbench -quick -json -metrics faults
	mv METRICS_faults.prom METRICS_faults_a.prom
	mv METRICS_faults.jsonl METRICS_faults_a.jsonl
	mv BENCH_faults.json BENCH_faults_a.json
	$(GO) run ./cmd/sdfbench -quick -json -metrics faults
	cmp METRICS_faults_a.prom METRICS_faults.prom
	cmp METRICS_faults_a.jsonl METRICS_faults.jsonl
	$(GO) run ./cmd/sdfctl metrics diff METRICS_faults_a.prom METRICS_faults.prom
	$(GO) run ./cmd/sdfctl metrics diff METRICS_faults_a.jsonl METRICS_faults.jsonl
	$(GO) run ./cmd/sdfctl bench diff BENCH_faults_a.json BENCH_faults.json
	$(GO) run ./cmd/sdfctl metrics summarize METRICS_faults.prom
	$(GO) run ./cmd/sdfctl slo report | tee slo-report.txt
	grep -q 'sdf/read_p99  *met' slo-report.txt
	grep -q 'gen3/read_p99  *VIOLATED' slo-report.txt
	rm -f METRICS_faults_a.prom METRICS_faults_a.jsonl BENCH_faults_a.json slo-report.txt

# bench-smoke regenerates the Figure 7 benchmark JSON in quick mode
# and diffs its determinism-sensitive fields (tables, metrics) against
# the committed baseline in bench/baseline/ — catching silent drift of
# the paper numbers while letting the recorded wall-clock/events-per-
# second perf trajectory move freely. CI uploads the fresh JSON as an
# artifact, so the perf history is one download per commit.
bench-smoke:
	$(GO) run ./cmd/sdfbench -quick -json figure7
	$(GO) run ./cmd/sdfctl bench diff bench/baseline/BENCH_figure7.json BENCH_figure7.json
	$(GO) run ./cmd/sdfctl bench diff -perf bench/baseline/BENCH_figure7.json BENCH_figure7.json

# kernel-bench is the scheduler perf gate (DESIGN.md "Kernel round 2"):
# it fails on an allocation regression in the pooled fast paths
# (TestKernelFastPathAllocs, the numeric form of the -benchmem
# columns), then records the BenchmarkKernel* suite with allocation
# accounting and a CPU profile. CI uploads kernel-bench.txt and
# kernel-bench.pprof, so every commit carries its kernel perf history.
kernel-bench:
	$(GO) test ./internal/sim -run TestKernelFastPathAllocs -count=1 -v
	$(GO) test ./internal/sim -run '^$$' -bench BenchmarkKernel -benchmem \
		-cpuprofile kernel-bench.pprof -o kernel-bench.test | tee kernel-bench.txt
	rm -f kernel-bench.test

check: build vet race lint
