package sdf

import (
	"testing"

	"sdf/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the
// paper's evaluation (and the ablations from DESIGN.md §5). Each
// iteration runs the full experiment in quick mode and logs the
// resulting table, so
//
//	go test -bench=. -benchmem
//
// produces the complete paper-versus-measured comparison. Use
// cmd/sdfbench (without -quick) for longer, more stable windows.

func benchExperiment(b *testing.B, run func(experiments.Options) experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := run(experiments.Options{Quick: true})
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkTable1CommoditySSD regenerates Table 1 (E1).
func BenchmarkTable1CommoditySSD(b *testing.B) {
	benchExperiment(b, experiments.Table1)
}

// BenchmarkFigure1OverProvisioning regenerates Figure 1 (E2).
func BenchmarkFigure1OverProvisioning(b *testing.B) {
	benchExperiment(b, experiments.Figure1)
}

// BenchmarkTable4Microbench regenerates Table 4 (E3).
func BenchmarkTable4Microbench(b *testing.B) {
	benchExperiment(b, experiments.Table4)
}

// BenchmarkFigure7ChannelScaling regenerates Figure 7 (E4).
func BenchmarkFigure7ChannelScaling(b *testing.B) {
	benchExperiment(b, experiments.Figure7)
}

// BenchmarkFigure8WriteLatency regenerates Figure 8 (E5).
func BenchmarkFigure8WriteLatency(b *testing.B) {
	benchExperiment(b, experiments.Figure8)
}

// BenchmarkFigure10OneSlice regenerates Figure 10 (E6).
func BenchmarkFigure10OneSlice(b *testing.B) {
	benchExperiment(b, experiments.Figure10)
}

// BenchmarkFigure11MultiSlice regenerates Figure 11 (E7).
func BenchmarkFigure11MultiSlice(b *testing.B) {
	benchExperiment(b, experiments.Figure11)
}

// BenchmarkFigure12RequestSize regenerates Figure 12 (E8).
func BenchmarkFigure12RequestSize(b *testing.B) {
	benchExperiment(b, experiments.Figure12)
}

// BenchmarkFigure13SequentialRead regenerates Figure 13 (E9).
func BenchmarkFigure13SequentialRead(b *testing.B) {
	benchExperiment(b, experiments.Figure13)
}

// BenchmarkFigure14WriteCompaction regenerates Figure 14 (E10).
func BenchmarkFigure14WriteCompaction(b *testing.B) {
	benchExperiment(b, experiments.Figure14)
}

// BenchmarkSoftwareStackLatency regenerates the §2.4/§4.3 comparison (E11).
func BenchmarkSoftwareStackLatency(b *testing.B) {
	benchExperiment(b, experiments.SoftwareStack)
}

// BenchmarkEraseThroughput regenerates the §3.2 erase-rate aside (E12).
func BenchmarkEraseThroughput(b *testing.B) {
	benchExperiment(b, experiments.EraseThroughput)
}

// BenchmarkAblationStripeUnit probes design choice A1.
func BenchmarkAblationStripeUnit(b *testing.B) {
	benchExperiment(b, experiments.AblationStripeUnit)
}

// BenchmarkAblationWriteBuffer probes design choice A2.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	benchExperiment(b, experiments.AblationWriteBuffer)
}

// BenchmarkAblationEraseScheduling probes design choice A3.
func BenchmarkAblationEraseScheduling(b *testing.B) {
	benchExperiment(b, experiments.AblationEraseScheduling)
}

// BenchmarkAblationSDFOverProvision probes design choice A4.
func BenchmarkAblationSDFOverProvision(b *testing.B) {
	benchExperiment(b, experiments.AblationSDFOverProvision)
}

// BenchmarkAblationInterruptMerging probes design choice A5.
func BenchmarkAblationInterruptMerging(b *testing.B) {
	benchExperiment(b, experiments.AblationInterruptMerging)
}

// BenchmarkAblationParity probes design choice A6.
func BenchmarkAblationParity(b *testing.B) {
	benchExperiment(b, experiments.AblationParity)
}

// BenchmarkAblationStaticWL probes design choice A7.
func BenchmarkAblationStaticWL(b *testing.B) {
	benchExperiment(b, experiments.AblationStaticWL)
}

// BenchmarkFutureWorkReadPriority evaluates the read-over-write
// scheduling the paper plans (§5).
func BenchmarkFutureWorkReadPriority(b *testing.B) {
	benchExperiment(b, experiments.FutureWorkReadPriority)
}

// BenchmarkFutureWorkPlacement evaluates load-balance-aware write
// placement (§3.3.1).
func BenchmarkFutureWorkPlacement(b *testing.B) {
	benchExperiment(b, experiments.FutureWorkPlacement)
}

// BenchmarkFutureWorkActiveScan evaluates in-storage filtering (§5).
func BenchmarkFutureWorkActiveScan(b *testing.B) {
	benchExperiment(b, experiments.FutureWorkActiveScan)
}
