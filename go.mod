module sdf

go 1.23
